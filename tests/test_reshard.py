"""End-to-end tests for online resharding with live key migration.

Each test deploys a real combo, drives the coordinator's double-ring
cutover through ``Deployment.request_reshard``, and asserts the one
property the whole protocol exists for: **no acked write is lost and
no stale copy resurfaces**, no matter how the migration pump
interleaves with live traffic.

``test_reshard_preserves_last_write`` is also the regression anchor
for the cross-reshard clobber bug: after an ``add`` window commits,
moved keys are *not* purged from their old owner; a later ``remove``
window's census must consult the old ring and skip those leftovers, or
they re-migrate and overwrite newer values at the true owner.
"""

import pytest

from repro.core.types import Consistency, Topology
from repro.errors import KeyNotFound
from repro.harness.deploy import Deployment, DeploymentSpec

COMBOS = [
    pytest.param(Topology.MS, Consistency.STRONG, id="ms-sc"),
    pytest.param(Topology.MS, Consistency.EVENTUAL, id="ms-ec"),
    pytest.param(Topology.AA, Consistency.STRONG, id="aa-sc"),
    pytest.param(Topology.AA, Consistency.EVENTUAL, id="aa-ec"),
]

KEYS = [f"k{i}" for i in range(36)]


def _deploy(topo, cons, seed=7):
    spec = DeploymentSpec(shards=2, replicas=3, topology=topo,
                          consistency=cons, seed=seed, standbys=1)
    dep = Deployment(spec)
    dep.start()
    return dep


def _get_eventual(client, key, rounds=40):
    """Read with staleness retries: EC replicas serve not_found until
    replay catches up with the migrated copies."""
    for _ in range(rounds):
        try:
            val = yield client.get(key)
            return val
        except KeyNotFound:
            yield 0.5
    raise AssertionError(f"{key} never converged")


def _gone_eventual(client, key, rounds=40):
    """The mirror image: a deleted key may stay visible on lagging
    replicas until replay applies the tombstone."""
    for _ in range(rounds):
        try:
            yield client.get(key)
            yield 0.5
        except KeyNotFound:
            return True
    raise AssertionError(f"{key} never disappeared")


def _run(dep, gen, until=900.0):
    fut = dep.sim.spawn(gen)
    dep.sim.run(until=until)
    assert fut.done, "scenario did not finish within the sim horizon"
    return fut.result()


# ---------------------------------------------------------------------------
# quiescent cutovers: values survive add and remove, including the
# stale-leftover regression (overwrite between the two windows)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("topo,cons", COMBOS)
def test_reshard_preserves_last_write(topo, cons):
    dep = _deploy(topo, cons)
    client = dep.client("c1")

    def proc():
        yield client.connect()
        for k in KEYS:
            yield client.put(k, f"{k}.v0")
        stats_add = yield dep.request_reshard("add")
        yield client.connect()  # adopt the committed ring
        for k in KEYS:
            val = yield from _get_eventual(client, k)
            assert val == f"{k}.v0", f"{k} lost across add: {val!r}"
        # overwrite everything: the copies left behind at the old
        # owners are now STALE — the remove window must not ship them
        for k in KEYS:
            yield client.put(k, f"{k}.v1")
        stats_rm = yield dep.request_reshard("remove", shard="s0")
        yield client.connect()
        for k in KEYS:
            val = yield from _get_eventual(client, k)
            assert val == f"{k}.v1", f"stale copy resurfaced for {k}: {val!r}"
        return stats_add, stats_rm

    stats_add, stats_rm = _run(dep, proc())
    assert stats_add["moved"] > 0  # the new shard took over a slice
    assert stats_rm["moved"] > 0   # the drained shard shipped its keys
    assert dep.coordinator.view.reshard is None
    assert dep.coordinator.view.ring_gen == 2


# ---------------------------------------------------------------------------
# live traffic racing the migration window
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("topo,cons", COMBOS)
def test_writes_racing_migration_window(topo, cons):
    dep = _deploy(topo, cons)
    client = dep.client("c1")
    writer = dep.client("c2")
    sim = dep.sim

    def write_rounds():
        yield writer.connect()
        # four rounds of overwrites with small gaps so they land
        # before, during, and after the migration window
        for r in range(1, 5):
            for k in KEYS:
                yield writer.put(k, f"{k}.r{r}")
            yield 0.3

    def proc():
        yield client.connect()
        for k in KEYS:
            yield client.put(k, f"{k}.r0")
        racer = sim.spawn(write_rounds())
        stats = yield dep.request_reshard("add")
        yield racer
        yield client.connect()
        for k in KEYS:
            val = yield from _get_eventual(client, k)
            # dirty-skip: an in-window write must never be clobbered
            # by the migration copy — the last round always wins
            assert val == f"{k}.r4", f"{k}: migration clobbered {val!r}"
        # deletes route through the same dual-write path
        for k in KEYS[:6]:
            yield client.delete(k)
        for k in KEYS[:6]:
            yield from _gone_eventual(client, k)
        return stats

    stats = _run(dep, proc())
    assert stats["moved"] + stats["skipped"] == stats["total"]


# ---------------------------------------------------------------------------
# the coordinator's view of a cutover
# ---------------------------------------------------------------------------
def test_reshard_stats_and_view_log():
    dep = _deploy(Topology.MS, Consistency.STRONG)
    client = dep.client("c1")

    def proc():
        yield client.connect()
        for k in KEYS:
            yield client.put(k, "v")
        e0 = dep.coordinator.view.epoch
        stats = yield dep.request_reshard("add")
        return e0, stats

    e0, stats = _run(dep, proc())
    view = dep.coordinator.view
    # the window bumps the epoch twice: once opening, once committing
    assert stats["epoch"] >= e0 + 2
    assert stats["shard"] == "s2"
    # the census is the moved slice, not the whole keyspace
    assert stats["moved"] + stats["skipped"] == stats["total"]
    assert 0 < stats["total"] < len(KEYS)
    kinds = [t.kind for t in view.log]
    assert "reshard-begin" in kinds and "reshard-commit" in kinds
    assert kinds.index("reshard-begin") < kinds.index("reshard-commit")
    assert view.reshard is None and view.ring_gen == 1
    assert "s2" in view.ring_members()


# ---------------------------------------------------------------------------
# client keeps (and patches) its ring instead of rebuilding
# ---------------------------------------------------------------------------
def test_client_ring_is_patched_incrementally():
    dep = _deploy(Topology.MS, Consistency.EVENTUAL)
    client = dep.client("c1")

    def proc():
        yield client.connect()
        ring = client._ring
        epoch, gen = client.map.epoch, client._ring_gen
        yield client.connect()  # same epoch + gen: everything kept
        assert client._ring is ring
        assert (client.map.epoch, client._ring_gen) == (epoch, gen)
        yield dep.request_reshard("add")
        yield client.connect()
        # membership changed, but the ring object was diffed in place
        assert client._ring is ring
        assert "s2" in client._ring.members
        assert client._ring_gen == 1
        # the window is committed, so no dual-route state lingers
        assert client._reshard is None and client._old_ring is None

    _run(dep, proc())
