"""Chaos tests: the stack must absorb random packet loss.

Client retries, chain-replication timeouts and MS+EC anti-entropy are
the absorption mechanisms; these tests crank ``loss_rate`` and assert
the *service-level* guarantees still hold.
"""

import pytest

from repro.core.types import Consistency, Topology
from repro.errors import KeyNotFound
from repro.harness import Deployment, DeploymentSpec
from repro.sim import Network, NetworkParams, RngRegistry, Simulator


def test_network_params_validation():
    with pytest.raises(ValueError):
        NetworkParams(loss_rate=1.0)
    with pytest.raises(ValueError):
        NetworkParams(loss_rate=-0.1)
    with pytest.raises(ValueError):
        NetworkParams(duplicate_rate=1.0)
    with pytest.raises(ValueError):
        NetworkParams(duplicate_rate=-0.1)
    with pytest.raises(ValueError):
        NetworkParams(reorder_rate=1.5)
    with pytest.raises(ValueError):
        NetworkParams(reorder_delay=0.0)
    with pytest.raises(ValueError):
        NetworkParams(latency_spike_factor=0.9)
    p = NetworkParams(duplicate_rate=0.2, reorder_rate=0.1,
                      reorder_delay=0.05, latency_spike_factor=3.0)
    assert (p.duplicate_rate, p.reorder_rate) == (0.2, 0.1)


def test_duplicate_rate_delivers_extra_copies():
    sim = Simulator()
    net = Network(sim, NetworkParams(duplicate_rate=0.5), RngRegistry(5))
    delivered = []
    for _ in range(500):
        net.send("a", "b", 0, lambda: delivered.append(1))
    sim.run()
    assert len(delivered) > 500
    assert net.messages_duplicated == len(delivered) - 500


def test_reorder_rate_swaps_in_flight_messages():
    sim = Simulator()
    net = Network(sim, NetworkParams(reorder_rate=0.5, jitter_frac=0.0),
                  RngRegistry(5))
    order = []
    for i in range(200):
        net.send("a", "b", 0, lambda i=i: order.append(i))
    sim.run()
    assert sorted(order) == list(range(200))  # nothing lost
    assert order != sorted(order)  # but delivery overtook send order
    assert net.messages_reordered > 0


def test_oneway_cut_is_asymmetric():
    sim = Simulator()
    net = Network(sim, NetworkParams(), RngRegistry(1))
    net.cut_oneway("a", "b")
    got = []
    net.send("a", "b", 0, lambda: got.append("a->b"))
    net.send("b", "a", 0, lambda: got.append("b->a"))
    sim.run()
    assert got == ["b->a"]
    net.heal_oneway("a", "b")
    net.send("a", "b", 0, lambda: got.append("a->b"))
    sim.run()
    assert "a->b" in got


def test_latency_factors_and_heal_all():
    sim = Simulator()
    net = Network(sim, NetworkParams(jitter_frac=0.0), RngRegistry(1))
    times = []
    net.send("a", "b", 0, lambda: times.append(sim.now))
    sim.run()
    base = times[0]
    net.set_link_factor("a", "b", 10.0)
    t0 = sim.now
    net.send("a", "b", 0, lambda: times.append(sim.now - t0))
    sim.run()
    assert times[1] == pytest.approx(10.0 * base)
    net.set_node_factor("b", 4.0)
    net.clear_degradations()
    t0 = sim.now
    net.send("a", "b", 0, lambda: times.append(sim.now - t0))
    sim.run()
    assert times[2] == pytest.approx(base)
    # heal_all clears partitions (chaos teardown path)
    net.partition("a", "b")
    net.cut_oneway("b", "c")
    net.heal_all()
    assert not net.is_cut("a", "b") and not net.is_cut("b", "c")


def test_loss_rate_drops_about_right_fraction():
    sim = Simulator()
    net = Network(sim, NetworkParams(loss_rate=0.3), RngRegistry(5))
    delivered = []
    for i in range(2000):
        net.send("a", "b", 0, lambda: delivered.append(1))
    sim.run()
    assert 0.6 < len(delivered) / 2000 < 0.8
    assert net.messages_dropped == 2000 - len(delivered)


def test_loopback_never_dropped():
    sim = Simulator()
    net = Network(sim, NetworkParams(loss_rate=0.9), RngRegistry(5))
    delivered = []
    for _ in range(200):
        net.send("a", "a", 0, lambda: delivered.append(1))
    sim.run()
    assert len(delivered) == 200


def build(topology, consistency, loss, **kw):
    dep = Deployment(
        DeploymentSpec(
            shards=2, replicas=3, topology=topology, consistency=consistency,
            net_params=NetworkParams(loss_rate=loss), **kw,
        )
    )
    dep.start()
    client = dep.client("c0", max_retries=10)
    dep.sim.run_future(client.connect())
    return dep, client


def test_ms_sc_strong_guarantee_survives_loss():
    """5% loss: acked writes are still fully replicated at ack time."""
    dep, client = build(Topology.MS, Consistency.STRONG, loss=0.05)
    for i in range(30):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
        shard = client.shard_for(f"k{i}")
        # the ack means the tail datalet has it, loss or no loss
        assert dep.cluster.actor(shard.tail.datalet).engine.get(f"k{i}") == str(i)


def test_ms_ec_converges_despite_heavy_loss():
    """15% loss on the propagation path: anti-entropy repairs gaps and
    every replica converges after quiescence."""
    dep, client = build(Topology.MS, Consistency.EVENTUAL, loss=0.15)
    for i in range(60):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    # quiesce long enough for gap detection + resends
    dep.sim.run_until(dep.sim.now + 10.0)
    for i in range(58):  # the last couple may still be buffered... flush
        pass
    dep.sim.run_until(dep.sim.now + 5.0)
    for sid in dep.map.shard_ids():
        shard = dep.map.shard(sid)
        master_engine = dep.cluster.actor(shard.head.datalet).engine
        for replica in shard.ordered()[1:]:
            engine = dep.cluster.actor(replica.datalet).engine
            # every key the master holds that had a *subsequent* write
            # (triggering gap detection) must eventually arrive; allow
            # only the very tail of the stream to lag
            missing = [k for k, _ in master_engine.items() if not engine.contains(k)]
            assert len(missing) <= 3, f"{replica.datalet} missing {len(missing)} keys"


def test_client_ops_succeed_under_loss():
    dep, client = build(Topology.AA, Consistency.EVENTUAL, loss=0.10)
    ok = 0
    for i in range(40):
        try:
            dep.sim.run_future(client.put(f"k{i}", str(i)))
            ok += 1
        except Exception:  # noqa: BLE001
            pass
    assert ok >= 38  # retries absorb the loss
    dep.sim.run_until(dep.sim.now + 3.0)
    found = 0
    for i in range(40):
        try:
            dep.sim.run_future(client.get(f"k{i}"))
            found += 1
        except KeyNotFound:
            pass
        except Exception:  # noqa: BLE001
            pass
    assert found >= 35
