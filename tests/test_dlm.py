"""Tests for the distributed lock manager."""

import pytest

from repro.dlm import LockManagerActor, LockTable
from repro.net import SimCluster


# ---------------------------------------------------------------------------
# LockTable core
# ---------------------------------------------------------------------------
def test_write_lock_exclusive():
    t = LockTable()
    grants = []
    assert t.acquire("k", "a", "w", lambda: grants.append("a"))
    assert not t.acquire("k", "b", "w", lambda: grants.append("b"))
    assert grants == ["a"]
    t.release("k", "a")
    assert grants == ["a", "b"]


def test_readers_share():
    t = LockTable()
    grants = []
    assert t.acquire("k", "r1", "r", lambda: grants.append("r1"))
    assert t.acquire("k", "r2", "r", lambda: grants.append("r2"))
    assert grants == ["r1", "r2"]
    writer, readers = t.holders("k")
    assert writer is None and readers == {"r1", "r2"}


def test_writer_waits_for_all_readers():
    t = LockTable()
    grants = []
    t.acquire("k", "r1", "r", lambda: None)
    t.acquire("k", "r2", "r", lambda: None)
    t.acquire("k", "w", "w", lambda: grants.append("w"))
    t.release("k", "r1")
    assert grants == []
    t.release("k", "r2")
    assert grants == ["w"]


def test_queued_writer_blocks_later_readers():
    """FIFO fairness: readers arriving behind a queued writer wait."""
    t = LockTable()
    grants = []
    t.acquire("k", "r1", "r", lambda: None)
    t.acquire("k", "w", "w", lambda: grants.append("w"))
    t.acquire("k", "r2", "r", lambda: grants.append("r2"))
    assert grants == []
    t.release("k", "r1")
    assert grants == ["w"]  # writer first
    t.release("k", "w")
    assert grants == ["w", "r2"]


def test_batch_reader_wakeup():
    t = LockTable()
    grants = []
    t.acquire("k", "w", "w", lambda: None)
    t.acquire("k", "r1", "r", lambda: grants.append("r1"))
    t.acquire("k", "r2", "r", lambda: grants.append("r2"))
    t.release("k", "w")
    assert grants == ["r1", "r2"]  # both readers wake together


def test_release_without_hold_returns_false():
    t = LockTable()
    assert not t.release("k", "ghost")
    t.acquire("k", "a", "w", lambda: None)
    assert not t.release("k", "other")
    assert t.release("k", "a")


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        LockTable().acquire("k", "a", "x", lambda: None)


def test_lock_state_cleaned_up_when_free():
    t = LockTable()
    t.acquire("k", "a", "w", lambda: None)
    t.release("k", "a")
    assert t.holders("k") == (None, set())
    assert t.queue_len("k") == 0


def test_contention_counter():
    t = LockTable()
    t.acquire("k", "a", "w", lambda: None)
    t.acquire("k", "b", "w", lambda: None)
    assert t.contentions == 1 and t.grants == 1


# ---------------------------------------------------------------------------
# LockManagerActor over the simulated network
# ---------------------------------------------------------------------------
def make_dlm(lease=1.0):
    c = SimCluster()
    c.add_actor(LockManagerActor("dlm", lease=lease))
    p1 = c.add_port("p1")
    p2 = c.add_port("p2")
    c.start()
    return c, p1, p2


def test_actor_grant_and_unlock():
    c, p1, p2 = make_dlm()
    resp = c.sim.run_future(p1.request("dlm", "lock", {"key": "k", "mode": "w"}))
    assert resp.type == "granted"
    resp = c.sim.run_future(p1.request("dlm", "unlock", {"key": "k"}))
    assert resp.payload["released"] is True


def test_actor_contention_serialized():
    c, p1, p2 = make_dlm()
    f1 = p1.request("dlm", "lock", {"key": "k", "mode": "w"})
    c.sim.run_future(f1)
    f2 = p2.request("dlm", "lock", {"key": "k", "mode": "w"})
    c.sim.run_until(c.sim.now + 0.1)
    assert not f2.done  # second waits while p1 holds the lock
    c.sim.run_future(p1.request("dlm", "unlock", {"key": "k"}))
    c.sim.run_future(f2)  # now granted


def test_lease_expiry_frees_lock():
    c, p1, p2 = make_dlm(lease=0.5)
    c.sim.run_future(p1.request("dlm", "lock", {"key": "k", "mode": "w"}))
    # p1 "crashes" (never unlocks); p2 must eventually acquire via expiry
    f2 = p2.request("dlm", "lock", {"key": "k", "mode": "w"})
    c.sim.run_future(f2)
    assert c.sim.now >= 0.5
    dlm = c.actor("dlm")
    assert dlm.expired == 1


def test_unlock_cancels_lease_timer():
    c, p1, p2 = make_dlm(lease=0.5)
    c.sim.run_future(p1.request("dlm", "lock", {"key": "k", "mode": "w"}))
    c.sim.run_future(p1.request("dlm", "unlock", {"key": "k"}))
    c.sim.run_until(2.0)
    assert c.actor("dlm").expired == 0
