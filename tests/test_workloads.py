"""Tests for workload generators."""

import random

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    ANALYTICS_MIX,
    DLIngestWorkload,
    HPCPhaseTrace,
    IO_FORWARDING_MIX,
    JOB_LAUNCH_MIX,
    KeySpace,
    MonitoringTrace,
    OpMix,
    UniformKeys,
    Workload,
    YCSB_A,
    YCSB_B,
    YCSB_E,
    ZipfKeys,
    hpc_workload,
    make_workload,
)


def test_keyspace_formatting_and_bounds():
    ks = KeySpace(100)
    assert ks.key(0) == "user00000000"
    assert ks.key(99) == "user00000099"
    with pytest.raises(ConfigError):
        ks.key(100)
    with pytest.raises(ConfigError):
        KeySpace(0)


def test_uniform_covers_keyspace():
    ks = KeySpace(50)
    gen = UniformKeys(ks, random.Random(1))
    seen = {gen.next_index() for _ in range(2000)}
    assert len(seen) == 50


def test_zipf_is_skewed():
    ks = KeySpace(10_000)
    z = ZipfKeys(ks, theta=0.99, rng=random.Random(2))
    # YCSB-style zipf(0.99): top 10 ranks attract a large share
    assert z.hot_fraction(top=10, samples=5000) > 0.25
    # but the tail is still reachable
    seen = {z.next_index() for _ in range(5000)}
    assert len(seen) > 500


def test_zipf_scramble_spreads_hot_keys():
    ks = KeySpace(1000)
    z = ZipfKeys(ks, rng=random.Random(3))
    hot = [int(z._perm[i]) for i in range(10)]
    assert hot != sorted(hot)  # not the first 10 indices


def test_zipf_reproducible():
    ks = KeySpace(100)
    a = ZipfKeys(ks, rng=random.Random(7))
    b = ZipfKeys(ks, rng=random.Random(7))
    assert [a.next_key() for _ in range(50)] == [b.next_key() for _ in range(50)]


def test_zipf_invalid_theta():
    with pytest.raises(ConfigError):
        ZipfKeys(KeySpace(10), theta=0.0)


def test_opmix_validation():
    with pytest.raises(ConfigError):
        OpMix(get=0.5, put=0.4)
    with pytest.raises(ConfigError):
        OpMix(get=1.5, put=-0.5)


def test_ycsb_mix_ratios_realized():
    wl = make_workload(YCSB_B, keys=1000, seed=5)
    for _ in range(10_000):
        wl.next_op()
    ratio = wl.counts["get"] / 10_000
    assert 0.93 < ratio < 0.97


def test_ycsb_a_is_half_and_half():
    wl = make_workload(YCSB_A, keys=1000, seed=5)
    for _ in range(10_000):
        wl.next_op()
    assert 0.47 < wl.counts["get"] / 10_000 < 0.53


def test_ycsb_e_scan_ops():
    wl = make_workload(YCSB_E, keys=1000, seed=5, scan_length=25)
    ops = [wl.next_op() for _ in range(1000)]
    scans = [op for op in ops if op[0] == "scan"]
    assert len(scans) > 900
    assert all(op[2] == 25 for op in scans)


def test_workload_value_size():
    wl = make_workload(YCSB_A, keys=10, value_size=64, seed=1)
    assert len(wl.value()) == 64


def test_preload_covers_every_key():
    wl = make_workload(YCSB_A, keys=37, seed=1)
    keys = [op[1] for op in wl.preload_ops()]
    assert len(keys) == 37 and len(set(keys)) == 37


def test_make_workload_distributions():
    assert make_workload(YCSB_A, distribution="uniform") is not None
    with pytest.raises(ConfigError):
        make_workload(YCSB_A, distribution="latest")


# ---------------------------------------------------------------------------
# HPC traces
# ---------------------------------------------------------------------------
def test_hpc_mixes_match_paper():
    assert IO_FORWARDING_MIX.get == pytest.approx(0.62)
    assert JOB_LAUNCH_MIX.get == pytest.approx(0.50)
    assert ANALYTICS_MIX.get == 1.0
    # I/O forwarding has 12% more reads than job launch (paper VIII-B)
    assert IO_FORWARDING_MIX.get - JOB_LAUNCH_MIX.get == pytest.approx(0.12)


def test_hpc_workload_factory():
    for name in ("job_launch", "io_forwarding", "monitoring", "analytics"):
        wl = hpc_workload(name, keys=100, seed=0)
        for _ in range(100):
            assert wl.next_op()[0] in ("get", "put", "scan", "del")
    with pytest.raises(ConfigError):
        hpc_workload("raytracing")


def test_phase_trace_overall_ratio_balanced():
    gets, puts = HPCPhaseTrace(jobs=4, ops_per_phase=200, seed=1).ratio()
    assert 0.45 < gets < 0.55
    assert gets + puts == pytest.approx(1.0)


def test_phase_trace_phases_differ():
    trace = HPCPhaseTrace(jobs=1, ops_per_phase=300, seed=2)
    ops = list(trace.ops())
    dispatch = ops[:300]
    collect = ops[600:900]
    get_rate = lambda chunk: sum(1 for o in chunk if o[0] == "get") / len(chunk)
    assert get_rate(dispatch) > 0.8
    assert get_rate(collect) < 0.2


def test_monitoring_trace_keys_are_timeseries():
    trace = MonitoringTrace(samples=100, seed=3)
    ops = list(trace.ops())
    assert all(op[0] == "put" for op in ops)
    comp, metric, idx = ops[0][1].split(".")
    assert comp in MonitoringTrace.COMPONENTS
    assert metric in MonitoringTrace.METRICS
    assert idx == "000000"


def test_monitoring_analytics_reads_written_keys():
    trace = MonitoringTrace(samples=50, seed=3)
    written = {op[1] for op in trace.ops()}
    reads = list(trace.analytics_ops(reads=200, seed=1))
    assert all(op[0] == "get" and op[1] in written for op in reads)


def test_monitoring_analytics_before_write_rejected():
    with pytest.raises(ConfigError):
        list(MonitoringTrace().analytics_ops(10))


# ---------------------------------------------------------------------------
# DL ingest
# ---------------------------------------------------------------------------
def test_dl_epoch_covers_dataset_shuffled():
    wl = DLIngestWorkload(images=100, batch=4, seed=4)
    load = list(wl.load_ops())
    assert len(load) == 25
    e1 = [op[1] for op in wl.epoch_ops()]
    e2 = [op[1] for op in wl.epoch_ops()]
    assert sorted(e1) == sorted(e2) == sorted(r for r in wl.records)
    assert e1 != e2  # reshuffled


def test_dl_record_payload_size():
    wl = DLIngestWorkload(images=8, batch=2, record_bytes=128)
    assert len(wl.record_value()) == 128
    with pytest.raises(ConfigError):
        DLIngestWorkload(images=0)
