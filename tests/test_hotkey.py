"""Tests for hot-key shadow replication (App C-C) and shared-log
auto-trim."""

import pytest

from repro.client import HotKeyReplicatingClient
from repro.core.types import Consistency, Topology
from repro.errors import KeyNotFound
from repro.harness import Deployment, DeploymentSpec
from repro.net import SimCluster
from repro.sharedlog import SharedLogActor


def build(threshold=10):
    dep = Deployment(DeploymentSpec(shards=4, replicas=3, topology=Topology.MS,
                                    consistency=Consistency.EVENTUAL))
    dep.start()
    client = HotKeyReplicatingClient(dep.client("c0"), threshold=threshold,
                                     n_shadows=3)
    dep.sim.run_future(client.connect())
    return dep, client


def test_cold_key_behaves_normally():
    dep, client = build()
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    assert dep.sim.run_future(client.get("k")) == "v"
    assert not client.is_hot("k")
    assert client.promotions == 0


def test_promotion_after_threshold_reads():
    dep, client = build(threshold=10)
    dep.sim.run_future(client.put("hot", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    for _ in range(12):
        assert dep.sim.run_future(client.get("hot")) == "v"
    assert client.is_hot("hot")
    assert client.promotions == 1
    # shadows were materialized in the store
    dep.sim.run_until(dep.sim.now + 1.0)
    for i in range(3):
        assert dep.sim.run_future(
            client.inner.get(client.shadow_key("hot", i))) == "v"


def test_shadows_rehash_to_other_shards():
    dep, client = build()
    key = "hot"
    shards = {client.inner.shard_for(key).shard_id} | {
        client.inner.shard_for(client.shadow_key(key, i)).shard_id for i in range(3)
    }
    assert len(shards) > 1  # load actually spreads


def test_hot_reads_use_shadows():
    dep, client = build(threshold=5)
    dep.sim.run_future(client.put("hot", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    for _ in range(40):
        assert dep.sim.run_future(client.get("hot")) == "v"
    assert client.shadow_reads > 5


def test_write_through_keeps_shadows_fresh():
    dep, client = build(threshold=5)
    dep.sim.run_future(client.put("hot", "v1"))
    dep.sim.run_until(dep.sim.now + 1.0)
    for _ in range(8):
        dep.sim.run_future(client.get("hot"))
    dep.sim.run_future(client.put("hot", "v2"))
    dep.sim.run_until(dep.sim.now + 1.0)
    for _ in range(20):
        assert dep.sim.run_future(client.get("hot")) == "v2"


def test_delete_demotes_and_cleans_shadows():
    dep, client = build(threshold=5)
    dep.sim.run_future(client.put("hot", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    for _ in range(8):
        dep.sim.run_future(client.get("hot"))
    dep.sim.run_future(client.delete("hot"))
    dep.sim.run_until(dep.sim.now + 1.0)
    assert not client.is_hot("hot")
    with pytest.raises(KeyNotFound):
        dep.sim.run_future(client.get("hot"))
    with pytest.raises(KeyNotFound):
        dep.sim.run_future(client.inner.get(client.shadow_key("hot", 0)))


def test_counter_capacity_bounded():
    dep, client = build(threshold=10**9)  # never promote
    client.counter_capacity = 50
    for i in range(500):
        try:
            dep.sim.run_future(client.get(f"k{i}"))
        except KeyNotFound:
            pass
    assert len(client._counts) <= 101  # decay keeps it bounded


# ---------------------------------------------------------------------------
# shared-log auto-trim
# ---------------------------------------------------------------------------
def test_sharedlog_auto_trim_on_reader_cursors():
    cluster = SimCluster()
    actor = SharedLogActor("log", high_watermark=10)
    cluster.add_actor(actor)
    w = cluster.add_port("writer")
    r1, r2 = cluster.add_port("r1"), cluster.add_port("r2")
    cluster.start()
    run = lambda p, t, pl: cluster.sim.run_future(p.request("log", t, pl))
    # both readers register their cursors before the log fills, exactly
    # like AA+EC replicas polling from position 0 at startup
    run(r1, "log_fetch", {"pos": 0, "max": 1})
    run(r2, "log_fetch", {"pos": 0, "max": 1})
    for i in range(30):
        run(w, "log_append", {"op": "put", "key": f"k{i}", "val": "v"})
    # readers catch up to different positions
    run(r1, "log_fetch", {"pos": 20, "max": 100})
    run(r2, "log_fetch", {"pos": 15, "max": 100})
    # window (30) exceeds watermark (10): trimmed to min cursor (15)
    assert actor.auto_trims >= 1
    assert actor.log.base == 15


def test_sharedlog_no_trim_below_watermark():
    cluster = SimCluster()
    actor = SharedLogActor("log", high_watermark=1000)
    cluster.add_actor(actor)
    w = cluster.add_port("writer")
    cluster.start()
    for i in range(20):
        cluster.sim.run_future(
            w.request("log", "log_append", {"op": "put", "key": f"k{i}", "val": "v"}))
    cluster.sim.run_future(w.request("log", "log_fetch", {"pos": 20, "max": 1}))
    assert actor.auto_trims == 0 and actor.log.base == 0


def test_sharedlog_auto_trim_disabled():
    cluster = SimCluster()
    actor = SharedLogActor("log", high_watermark=None)
    cluster.add_actor(actor)
    w = cluster.add_port("writer")
    cluster.start()
    for i in range(50):
        cluster.sim.run_future(
            w.request("log", "log_append", {"op": "put", "key": f"k{i}", "val": "v"}))
    cluster.sim.run_future(w.request("log", "log_fetch", {"pos": 50, "max": 1}))
    assert actor.log.base == 0
