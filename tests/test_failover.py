"""Failover integration tests (paper §IV failover paragraphs, App D).

Clock scale: heartbeat 1 s, failure timeout 3 s — a kill at t is
detected by ~t+4 and the replacement pair joins shortly after
(snapshot + restore are fast at these data sizes).
"""

import pytest

from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec


def build(topology, consistency, shards=1, replicas=3, standbys=2, **kw):
    dep = Deployment(
        DeploymentSpec(
            shards=shards,
            replicas=replicas,
            topology=topology,
            consistency=consistency,
            standbys=standbys,
            **kw,
        )
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


def load_keys(dep, client, n=30):
    futs = [client.put(f"k{i}", str(i)) for i in range(n)]
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 1.0)


def settle_failover(dep, seconds=12.0):
    dep.sim.run_until(dep.sim.now + seconds)


def test_tail_failure_ms_sc_restores_replica_count():
    dep, client = build(Topology.MS, Consistency.STRONG)
    load_keys(dep, client)
    before = dep.shard(0).controlets()
    epoch0 = dep.map.epoch
    dep.kill_replica(0, chain_pos=2)  # tail
    settle_failover(dep)
    shard = dep.shard(0)
    assert len(shard.replicas) == 3  # replacement joined
    assert dep.map.epoch > epoch0
    assert shard.controlets() != before
    # replacement datalet holds the full dataset
    new_tail = shard.tail
    engine = dep.cluster.actor(new_tail.datalet).engine
    assert len(engine) == 30
    assert engine.get("k7") == "7"


def test_head_failure_ms_sc_promotes_second():
    dep, client = build(Topology.MS, Consistency.STRONG)
    load_keys(dep, client)
    old = dep.shard(0).ordered()
    dep.kill_replica(0, chain_pos=0)  # head
    settle_failover(dep)
    shard = dep.shard(0)
    # leader election: the old second node is the new head
    assert shard.head.controlet == old[1].controlet
    # writes and strong reads work against the repaired chain
    dep.sim.run_future(client.put("after", "failover"))
    assert dep.sim.run_future(client.get("after")) == "failover"


def test_mid_failure_ms_sc_chain_relinks():
    dep, client = build(Topology.MS, Consistency.STRONG)
    load_keys(dep, client)
    dep.kill_replica(0, chain_pos=1)  # mid
    settle_failover(dep)
    dep.sim.run_future(client.put("post", "mid-dead"))
    assert dep.sim.run_future(client.get("post")) == "mid-dead"
    # every surviving + replacement datalet converges on the write
    dep.sim.run_until(dep.sim.now + 2.0)
    for r in dep.shard(0).ordered():
        assert dep.cluster.actor(r.datalet).engine.get("post") == "mid-dead"


def test_master_failure_ms_ec_promotes_and_serves_writes():
    dep, client = build(Topology.MS, Consistency.EVENTUAL)
    load_keys(dep, client)
    old_master = dep.shard(0).head.controlet
    dep.kill_replica(0, chain_pos=0)
    settle_failover(dep)
    assert dep.shard(0).head.controlet != old_master
    dep.sim.run_future(client.put("new", "master"))
    dep.sim.run_until(dep.sim.now + 1.0)
    assert dep.sim.run_future(client.get("new")) == "master"


def test_slave_failure_ms_ec_reads_unaffected():
    dep, client = build(Topology.MS, Consistency.EVENTUAL)
    load_keys(dep, client)
    dep.kill_replica(0, chain_pos=2)
    # reads keep working right through the detection window
    for _ in range(5):
        dep.sim.run_until(dep.sim.now + 1.0)
        assert dep.sim.run_future(client.get("k3")) == "3"
    settle_failover(dep)
    assert len(dep.shard(0).replicas) == 3


def test_active_failure_aa_ec_replacement_replays():
    dep, client = build(Topology.AA, Consistency.EVENTUAL)
    load_keys(dep, client)
    dep.kill_replica(0, chain_pos=1)
    settle_failover(dep)
    shard = dep.shard(0)
    assert len(shard.replicas) == 3
    # writes after recovery propagate to the replacement via the log
    dep.sim.run_future(client.put("fresh", "write"))
    dep.sim.run_until(dep.sim.now + 2.0)
    for r in shard.ordered():
        assert dep.cluster.actor(r.datalet).engine.get("fresh") == "write"


def test_active_failure_aa_sc_lock_lease_recovers():
    """A lock held by the dead active expires instead of deadlocking."""
    dep, client = build(Topology.AA, Consistency.STRONG)
    load_keys(dep, client, n=10)
    dep.kill_replica(0, chain_pos=0)
    settle_failover(dep)
    dep.sim.run_future(client.put("locked", "ok"))
    assert dep.sim.run_future(client.get("locked")) == "ok"


def test_no_standby_shard_keeps_serving_degraded():
    dep, client = build(Topology.MS, Consistency.STRONG, standbys=0)
    load_keys(dep, client)
    dep.kill_replica(0, chain_pos=2)
    settle_failover(dep)
    shard = dep.shard(0)
    assert len(shard.replicas) == 2  # degraded but alive
    dep.sim.run_future(client.put("still", "here"))
    assert dep.sim.run_future(client.get("still")) == "here"


def test_double_failure_consumes_both_standbys():
    dep, client = build(Topology.MS, Consistency.EVENTUAL, standbys=2)
    load_keys(dep, client)
    dep.kill_replica(0, chain_pos=2)
    settle_failover(dep)
    dep.kill_replica(0, chain_pos=1)
    settle_failover(dep)
    shard = dep.shard(0)
    assert len(shard.replicas) == 3
    assert len(dep._standbys) == 0
    dep.sim.run_until(dep.sim.now + 2.0)
    for r in shard.ordered():
        assert dep.cluster.actor(r.datalet).engine.get("k5") == "5"


def test_failover_counter_and_epoch_progression():
    dep, client = build(Topology.MS, Consistency.EVENTUAL)
    load_keys(dep, client, n=5)
    assert dep.coordinator.failovers == 0
    dep.kill_replica(0, chain_pos=1)
    settle_failover(dep)
    assert dep.coordinator.failovers == 1
    # epoch bumped at least twice: removal + replacement join
    assert dep.map.epoch >= 2


def test_in_flight_writes_survive_tail_kill():
    """Writes issued around the kill eventually succeed via retries."""
    dep, client = build(Topology.MS, Consistency.STRONG)
    load_keys(dep, client, n=5)

    results = []

    def writer():
        for i in range(40):
            try:
                yield client.put(f"w{i}", str(i))
                results.append(("ok", i))
            except Exception as e:  # noqa: BLE001 - recording all outcomes
                results.append(("fail", i, str(e)))
            yield 0.25

    fut = dep.sim.spawn(writer())
    dep.sim.call_later(2.0, lambda: dep.kill_replica(0, 2))
    dep.sim.run_future(fut)
    failures = [r for r in results if r[0] == "fail"]
    assert len(failures) <= 2, f"too many failed writes: {failures}"
    # and the surviving chain has the last write
    assert dep.sim.run_future(client.get("w39")) == "39"
