"""Unit tests for the coordinator actor (metadata, liveness, repair)."""

import pytest

from repro.coordinator import CoordinatorActor
from repro.core.config import ControlConfig
from repro.core.types import ClusterMap, Consistency, Replica, ShardInfo, Topology
from repro.errors import ConfigError
from repro.harness import Deployment, DeploymentSpec
from repro.net import SimCluster


def make_coordinator(spawner=None):
    cmap = ClusterMap()
    cmap.shards["s0"] = ShardInfo(
        "s0", Topology.MS, Consistency.STRONG,
        [Replica("c1", "d1", "h1", 0), Replica("c2", "d2", "h2", 1),
         Replica("c3", "d3", "h3", 2)],
    )
    cluster = SimCluster()
    coord = CoordinatorActor("coordinator", cluster_map=cmap,
                             config=ControlConfig(), spawner=spawner)
    cluster.add_actor(coord)
    port = cluster.add_port("client")
    cluster.start()
    return cluster, coord, port


def test_get_cluster_map():
    cluster, coord, port = make_coordinator()
    resp = cluster.sim.run_future(port.request("coordinator", "get_cluster_map", {}))
    cmap = ClusterMap.from_dict(resp.payload["map"])
    assert cmap.shard("s0").controlets() == ["c1", "c2", "c3"]


def test_get_shard_info_known_and_unknown():
    cluster, coord, port = make_coordinator()
    resp = cluster.sim.run_future(
        port.request("coordinator", "get_shard_info", {"shard": "s0"}))
    assert resp.type == "shard_info"
    resp = cluster.sim.run_future(
        port.request("coordinator", "get_shard_info", {"shard": "nope"}))
    assert resp.type == "error"


def test_heartbeats_update_liveness():
    cluster, coord, port = make_coordinator()
    cluster.sim.run_until(0.5)
    port.send("coordinator", "heartbeat", {"controlet": "c1", "datalet": "d1", "shard": "s0"})
    cluster.sim.run_until(1.0)
    assert coord._last_seen["c1"] >= 0.5


def test_missing_heartbeats_trigger_chain_repair():
    """No controlet ever heartbeats, so the sweep eventually declares
    them all dead and the shard drains (no spawner: no replacements)."""
    cluster, coord, port = make_coordinator()
    cluster.sim.run_until(20.0)
    assert coord.failovers == 3
    assert coord.map.shard("s0").replicas == []


def test_heartbeating_controlet_survives_sweep():
    cluster, coord, port = make_coordinator()

    def beat():
        port.send("coordinator", "heartbeat",
                  {"controlet": "c1", "datalet": "d1", "shard": "s0"})

    for t in range(1, 20):
        cluster.sim.call_later(float(t), beat)
    cluster.sim.run_until(19.0)
    survivors = coord.map.shard("s0").controlets()
    assert survivors == ["c1"]  # c2/c3 died, c1 promoted to head
    assert coord.leader_elect("s0") == "c1"


def test_leader_elect_after_head_failure():
    cluster, coord, port = make_coordinator()
    shard = coord.map.shard("s0")
    coord._handle_failure(shard, shard.head)
    assert coord.leader_elect("s0") == "c2"
    assert [r.chain_pos for r in shard.ordered()] == [0, 1]
    assert coord.map.epoch == 1


def test_recovery_done_without_pending_is_ignored():
    cluster, coord, port = make_coordinator()
    port.send("coordinator", "recovery_done", {"controlet": "ghost", "shard": "s0"})
    cluster.sim.run_until(0.5)
    assert len(coord.map.shard("s0").replicas) == 3


def test_register_pending_then_recovery_done_joins_as_tail():
    cluster, coord, port = make_coordinator()
    shard = coord.map.shard("s0")
    coord._handle_failure(shard, shard.tail)
    replica = Replica("c4", "d4", "h4", 99)
    coord.register_pending(replica)
    coord._recovering["c4"] = "s0"
    port.send("coordinator", "recovery_done", {"controlet": "c4", "shard": "s0"})
    cluster.sim.run_until(0.5)
    assert coord.map.shard("s0").tail.controlet == "c4"
    assert coord.map.shard("s0").tail.chain_pos == 2


def test_transition_without_spawner_errors():
    cluster, coord, port = make_coordinator()
    resp = cluster.sim.run_future(
        port.request("coordinator", "request_transition",
                     {"topology": "aa", "consistency": "eventual"}))
    assert resp.type == "error"


def test_deployment_spec_validation():
    with pytest.raises(ConfigError):
        DeploymentSpec(shards=0)
    with pytest.raises(ConfigError):
        DeploymentSpec(replicas=0)
    with pytest.raises(ConfigError):
        DeploymentSpec(datalet_kinds=())
    spec = DeploymentSpec(topology="aa", consistency="strong")
    assert spec.topology is Topology.AA


def test_deployment_replica_host_lookup():
    dep = Deployment(DeploymentSpec(shards=1, replicas=2))
    assert dep.replica_host(0, 0) == "node0.0"
    with pytest.raises(ConfigError):
        dep.replica_host(0, 7)
