"""Tests for §IV-E extended topologies: AA-MS hybrid and Chord P2P."""

import math

import pytest

from repro.core.config import ControlConfig
from repro.core.hybrid import AAMSHybridControlet, P2PNode, chord_distance
from repro.core.ms_ec import MSEventualControlet
from repro.core.types import Consistency, Replica, ShardInfo, Topology
from repro.datalet import DataletActor, HashTableEngine
from repro.errors import KeyNotFound
from repro.net import SimCluster
from repro.sharedlog import SharedLogActor


# ---------------------------------------------------------------------------
# AA-MS hybrid
# ---------------------------------------------------------------------------
def build_hybrid():
    """2 masters (AA via shared log), each with 1 slave (MS+EC)."""
    c = SimCluster()
    c.add_actor(SharedLogActor("log"))
    cfg = ControlConfig()
    shard = ShardInfo(
        "s0",
        Topology.AA,
        Consistency.EVENTUAL,
        [
            Replica("m0", "dm0", "hm0", 0),
            Replica("m1", "dm1", "hm1", 1),
        ],
    )
    for i in range(2):
        c.add_actor(DataletActor(f"dm{i}", HashTableEngine()), host=f"hm{i}")
        c.add_actor(DataletActor(f"ds{i}", HashTableEngine()), host=f"hs{i}")
        c.add_actor(
            MSEventualControlet(
                f"sl{i}",
                shard=ShardInfo.from_dict(shard.to_dict()),
                datalet=f"ds{i}",
                coordinator="nocoord",
                config=cfg,
            ),
            host=f"hs{i}",
        )
        c.add_actor(
            AAMSHybridControlet(
                f"m{i}",
                shard=ShardInfo.from_dict(shard.to_dict()),
                datalet=f"dm{i}",
                coordinator="nocoord",
                config=cfg,
                sharedlog="log",
                slaves=[f"sl{i}"],
            ),
            host=f"hm{i}",
        )
    port = c.add_port("client")
    c.start()
    return c, port


def test_hybrid_write_reaches_masters_and_slaves():
    c, port = build_hybrid()
    resp = c.sim.run_future(port.request("m0", "put", {"key": "k", "val": "v"}))
    assert resp.type == "ok"
    c.sim.run_until(c.sim.now + 2.0)
    for datalet in ("dm0", "dm1", "ds0", "ds1"):
        assert c.actor(datalet).engine.get("k") == "v", datalet


def test_hybrid_either_master_accepts_writes():
    c, port = build_hybrid()
    c.sim.run_future(port.request("m0", "put", {"key": "a", "val": "1"}))
    c.sim.run_future(port.request("m1", "put", {"key": "b", "val": "2"}))
    c.sim.run_until(c.sim.now + 2.0)
    for datalet in ("dm0", "dm1", "ds0", "ds1"):
        engine = c.actor(datalet).engine
        assert engine.get("a") == "1" and engine.get("b") == "2"


def test_hybrid_conflicting_writes_converge_everywhere():
    c, port = build_hybrid()
    futs = []
    for i in range(10):
        futs.append(port.request("m0", "put", {"key": "hot", "val": f"x{i}"}))
        futs.append(port.request("m1", "put", {"key": "hot", "val": f"y{i}"}))
    c.sim.run_future(c.sim.gather(futs))
    c.sim.run_until(c.sim.now + 3.0)
    values = {c.actor(d).engine.get("hot") for d in ("dm0", "dm1", "ds0", "ds1")}
    assert len(values) == 1


# ---------------------------------------------------------------------------
# Chord P2P
# ---------------------------------------------------------------------------
def build_p2p(n=16):
    c = SimCluster()
    members = [f"peer{i}" for i in range(n)]
    for m in members:
        c.add_actor(P2PNode(m, members))
    port = c.add_port("client")
    c.start()
    return c, port, members


def test_chord_distance_wraps():
    assert chord_distance(5, 10) == 5
    assert chord_distance(10, 5) == (1 << 64) - 5


def test_p2p_put_get_via_any_entry_node():
    c, port, members = build_p2p()
    resp = c.sim.run_future(port.request(members[0], "put", {"key": "k", "val": "v"}))
    assert resp.type == "ok"
    # read through a different entry point
    resp = c.sim.run_future(port.request(members[7], "get", {"key": "k"}))
    assert resp.payload["val"] == "v"


def test_p2p_key_stored_only_at_owner():
    c, port, members = build_p2p()
    c.sim.run_future(port.request(members[3], "put", {"key": "somekey", "val": "v"}))
    holders = [m for m in members if c.actor(m).engine.contains("somekey")]
    assert len(holders) == 1
    assert holders[0] == c.actor(members[0]).owner_of("somekey")


def test_p2p_hop_count_logarithmic():
    c, port, members = build_p2p(n=32)
    worst = 0
    for i in range(40):
        resp = c.sim.run_future(
            port.request(members[i % 32], "put", {"key": f"key{i}", "val": "v"})
        )
        worst = max(worst, resp.payload["hops"])
    assert worst <= math.ceil(math.log2(32)) + 1, f"worst hop count {worst}"


def test_p2p_delete_and_missing():
    c, port, members = build_p2p()
    c.sim.run_future(port.request(members[0], "put", {"key": "k", "val": "v"}))
    resp = c.sim.run_future(port.request(members[5], "del", {"key": "k"}))
    assert resp.type == "ok"
    resp = c.sim.run_future(port.request(members[9], "get", {"key": "k"}))
    assert resp.payload["error"] == "not_found"


def test_p2p_all_nodes_agree_on_ownership():
    c, port, members = build_p2p(n=8)
    for key in ("a", "b", "zebra", "user123"):
        owners = {c.actor(m).owner_of(key) for m in members}
        assert len(owners) == 1
