"""Tests for the simulation race detector (repro.analysis.races)."""

import pytest

from repro.analysis.races import RaceDetector, perturb_ties
from repro.chaos.runner import run_combo
from repro.core.types import Consistency, Topology
from repro.errors import SimulationError
from repro.net.actor import Actor
from repro.net.simnet import SimCluster
from repro.sim import NetworkParams, Simulator


class Sink(Actor):
    def __init__(self, node_id="sink"):
        super().__init__(node_id)
        self.seen = []
        self.register("ping", lambda m: self.seen.append(m.payload["tag"]))


def build(sim):
    """Two senders, one receiver, zero jitter: same-size payloads sent at
    the same instant arrive at the same timestamp."""
    cluster = SimCluster(sim=sim, net_params=NetworkParams(jitter_frac=0.0))
    sink = Sink()
    cluster.add_actor(sink)
    p1 = Actor("p1")
    cluster.add_actor(p1)
    p2 = Actor("p2")
    cluster.add_actor(p2)
    cluster.start()
    return cluster, sink, p1, p2


# ---------------------------------------------------------------------------
# conflict detection
# ---------------------------------------------------------------------------
def test_tied_deliveries_to_one_actor_are_a_race():
    sim = Simulator()
    det = RaceDetector()
    cluster, sink, p1, p2 = build(sim)
    cluster.attach_race_detector(det)
    assert sim.tracer is det
    sim.call_later(0.5, lambda: p1.send("sink", "ping", {"tag": "one"}))
    sim.call_later(0.5, lambda: p2.send("sink", "ping", {"tag": "two"}))
    sim.run()
    det.finish()
    assert len(det.races) == 1
    race = det.races[0]
    assert race.actor == "sink"
    assert race.first_labels == ("deliver:ping",)
    assert race.second_labels == ("deliver:ping",)
    assert race.first_seq != race.second_seq
    assert "sink" in race.describe()
    assert det.tied_groups >= 1
    assert sink.seen == ["one", "two"]


def test_tied_timers_on_one_actor_are_a_race():
    sim = Simulator()
    det = RaceDetector()
    cluster, sink, _, _ = build(sim)
    cluster.attach_race_detector(det)
    fired = []
    sink.set_timer(1.0, lambda: fired.append("a"))
    sink.set_timer(1.0, lambda: fired.append("b"))
    sim.run()
    det.finish()
    assert fired == ["a", "b"]
    assert any(
        r.actor == "sink" and any(l.startswith("timer:") for l in r.first_labels)
        for r in det.races
    )


def test_different_actors_or_times_are_not_races():
    sim = Simulator()
    det = RaceDetector()
    cluster, sink, p1, p2 = build(sim)
    cluster.attach_race_detector(det)
    p1.register("noop", lambda m: None)
    p2.register("noop", lambda m: None)
    # same time, different destinations
    sim.call_later(0.5, lambda: sink.send("p1", "noop", {}))
    sim.call_later(0.5, lambda: sink.send("p2", "noop", {}))
    # same destination, different times
    sim.call_later(1.0, lambda: p1.send("sink", "ping", {"tag": "x"}))
    sim.call_later(2.0, lambda: p2.send("sink", "ping", {"tag": "y"}))
    sim.run()
    det.finish()
    assert det.races == []
    assert det.events_traced > 0


def test_race_cap_bounds_report_volume():
    sim = Simulator()
    det = RaceDetector(max_races=2)
    cluster, sink, p1, p2 = build(sim)
    cluster.attach_race_detector(det)
    for i in range(6):
        sender = p1 if i % 2 else p2
        sim.call_later(0.5, lambda s=sender, i=i: s.send("sink", "ping", {"tag": str(i)}))
    sim.run()
    det.finish()
    assert len(det.races) == 2


# ---------------------------------------------------------------------------
# tie-break perturbation
# ---------------------------------------------------------------------------
def test_kernel_rejects_unknown_tie_break():
    with pytest.raises(SimulationError):
        Simulator(tie_break="random")


def test_perturbation_flips_tied_outcome():
    def scenario(sim):
        _, sink, p1, p2 = build(sim)
        sim.call_later(0.5, lambda: p1.send("sink", "ping", {"tag": "one"}))
        sim.call_later(0.5, lambda: p2.send("sink", "ping", {"tag": "two"}))
        sim.run()
        return ",".join(sink.seen)

    res = perturb_ties(scenario)
    assert res.differs
    assert res.baseline == "one,two"
    assert res.perturbed == "two,one"
    assert "DEPENDS" in res.describe()


def test_perturbation_stable_when_order_is_forced():
    def scenario(sim):
        _, sink, p1, p2 = build(sim)
        # distinct send times: protocol-ordered, no tie to flip
        sim.call_later(0.5, lambda: p1.send("sink", "ping", {"tag": "one"}))
        sim.call_later(0.6, lambda: p2.send("sink", "ping", {"tag": "two"}))
        sim.run()
        return ",".join(sink.seen)

    res = perturb_ties(scenario)
    assert not res.differs
    assert "independent" in res.describe()


def test_perturbation_full_ms_sc_failover_correct_under_both_orders():
    """A full MS+SC deployment driven through a master failover under
    both kernel tie orders.  Tie order may legally change timings, but
    it must never be load-bearing for protocol correctness: every acked
    op stays linearizable and the failover completes either way."""
    from repro.chaos.history import HistoryRecorder
    from repro.chaos.oracle import check_linearizable
    from repro.harness.deploy import Deployment, DeploymentSpec

    def scenario(sim):
        spec = DeploymentSpec(
            shards=1, replicas=3, topology=Topology.MS,
            consistency=Consistency.STRONG, seed=5, standbys=2,
        )
        cluster = SimCluster(
            sim=sim, costs=spec.costs, net_params=spec.net_params, seed=spec.seed
        )
        dep = Deployment(spec, cluster=cluster)
        dep.start()
        recorder = HistoryRecorder(sim)
        client = dep.client("tie", recorder=recorder, max_retries=8)
        sim.run_future(client.connect())
        client.auto_refresh(0.5)
        for i in range(4):
            sim.run_future(client.put(f"k{i}", f"v{i}"))
        victim = dep.kill_replica(0, chain_pos=0)  # the master
        sim.run_until(sim.now + 12.0)  # detection + promotion + sync
        for i in range(4):
            sim.run_future(client.put(f"k{i}", f"w{i}"))
        reads = [sim.run_future(client.get(f"k{i}")) for i in range(4)]
        report = check_linearizable(recorder.records)
        assert report.ok, report.describe()
        assert dep.coordinator.failovers >= 1
        assert reads == [f"w{i}" for i in range(4)]
        return (
            f"victim={victim};failovers={dep.coordinator.failovers};"
            f"reads={','.join(reads)};history={recorder.digest()}"
        )

    res = perturb_ties(scenario)
    # correctness was asserted inside the scenario under BOTH orders;
    # the digests just document whether any tie was observable at all
    assert res.baseline and res.perturbed
    assert res.describe()


# ---------------------------------------------------------------------------
# instrumented chaos soak
# ---------------------------------------------------------------------------
def test_chaos_soak_is_race_free_and_digest_invariant():
    plain = run_combo(Topology.MS, Consistency.EVENTUAL, seed=3,
                      duration=3.0, quiesce=3.0)
    traced = run_combo(Topology.MS, Consistency.EVENTUAL, seed=3,
                       duration=3.0, quiesce=3.0, detect_races=True)
    assert traced.ok
    assert traced.stats["races"] == 0
    assert traced.races == []
    # jittered delivery means ties never collide on one actor; and the
    # instrumentation itself must not perturb the simulation
    assert traced.digest == plain.digest
    assert traced.stats["tied_groups"] >= 0
    assert "races" not in plain.stats
