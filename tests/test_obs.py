"""Observability plane tests (PR 5): tracing, metrics, rid dedup.

Pins the four load-bearing properties of the RequestContext refactor:

* traces are **seed-stable**: same seed ⇒ byte-identical JSONL dumps;
* attaching a recorder is **pure observation**: chaos digests are
  identical with tracing on and off;
* tracing off adds nothing the oracle can see, but request ids still
  flow — replicas deduplicate client retries (``dup_writes``), and the
  oracle may assume exactly-once for combos with a full dedup path;
* the metrics registry scrapes live actor stats without a single
  simulation message.
"""

import filecmp

import pytest

from repro.chaos import check_linearizable, run_combo
from repro.chaos.history import OpRecord
from repro.cli import main
from repro.core.types import Consistency, Topology
from repro.errors import BespoError
from repro.harness import Deployment, DeploymentSpec
from repro.harness.stats import collect_registry
from repro.obs import RequestContext
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import TRACE_FORMAT


def build(topology=Topology.MS, consistency=Consistency.STRONG, trace=True,
          seed=7, **kw):
    dep = Deployment(
        DeploymentSpec(shards=2, replicas=3, topology=topology,
                       consistency=consistency, seed=seed, **kw)
    )
    recorder = dep.cluster.attach_obs() if trace else None
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client, recorder


def drive(dep, client, ops=30):
    for i in range(ops):
        key = f"k{i % 6}"
        try:
            if i % 3 == 2:
                dep.sim.run_future(client.get(key))
            elif i % 7 == 6:
                dep.sim.run_future(client.delete(key))
            else:
                dep.sim.run_future(client.put(key, f"v{i}"))
        except BespoError:
            pass  # not-yet-written keys read as absent
    dep.sim.run_until(dep.sim.now + 1.0)


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
def test_same_seed_traces_are_byte_identical(tmp_path):
    paths = []
    for run in range(2):
        dep, client, recorder = build(seed=7)
        drive(dep, client)
        path = tmp_path / f"run{run}.jsonl"
        recorder.dump(str(path), meta={"seed": 7})
        paths.append(path)
    assert filecmp.cmp(paths[0], paths[1], shallow=False)
    first = paths[0].read_text().splitlines()[0]
    assert TRACE_FORMAT in first


def test_span_tree_well_formed_and_stages_present():
    dep, client, recorder = build()
    drive(dep, client)
    assert recorder.validate() == []
    names = {s.name for s in recorder.spans}
    # client root + RPC attempt + fabric transit + receiver CPU stages
    assert "op:put" in names and "op:get" in names
    assert any(n.startswith("rpc:") for n in names)
    assert any(n.startswith("net:") for n in names)
    assert any(n.startswith("cpu:") for n in names)
    # replication shows up under its own RPC type (MS+SC: coalesced
    # chain_put_batch frames since the batching tier)
    assert "rpc:chain_put_batch" in names
    breakdown = recorder.breakdown()
    assert breakdown["op:put"]["count"] >= 1
    assert breakdown["op:put"]["p95_ms"] >= breakdown["op:put"]["p50_ms"] >= 0


def test_format_trace_renders_nested_tree():
    dep, client, recorder = build()
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    root = next(s for s in recorder.spans if s.name == "op:put")
    text = recorder.format_trace(root.trace_id)
    lines = text.splitlines()
    assert lines[0].startswith("op:put")
    assert any(line.startswith("  ") for line in lines)  # children indented


def test_tracing_off_records_nothing_but_ops_still_work():
    dep, client, recorder = build(trace=False)
    drive(dep, client, ops=10)
    assert recorder is None
    assert dep.cluster.obs is None
    assert dep.sim.run_future(client.get("k1")) is not None


def test_chaos_digest_invariant_under_tracing():
    kw = dict(seed=3, duration=6.0)
    plain = run_combo(Topology.MS, Consistency.STRONG, **kw)
    traced = run_combo(Topology.MS, Consistency.STRONG, trace=True, **kw)
    assert plain.digest == traced.digest
    assert plain.recorder is None
    assert traced.recorder is not None and traced.recorder.spans


# ---------------------------------------------------------------------------
# request-id dedup
# ---------------------------------------------------------------------------
def test_duplicate_rid_put_is_deduplicated():
    dep, client, _ = build(trace=False)
    port = dep.cluster.add_port("raw")
    head = client.shard_for("k").head.controlet
    ctx = RequestContext(origin="raw", req_id="raw.1")
    r1 = dep.sim.run_future(
        port.request(head, "put", {"key": "k", "val": "v1"}, timeout=5.0,
                     ctx=ctx))
    assert r1.type == "ok"
    # same rid again (different value): served from the done-cache, not
    # re-executed — the stored value must stay v1
    r2 = dep.sim.run_future(
        port.request(head, "put", {"key": "k", "val": "IGNORED"}, timeout=5.0,
                     ctx=ctx))
    assert r2.type == "ok"
    dep.sim.run_until(dep.sim.now + 0.5)
    assert dep.sim.run_future(client.get("k")) == "v1"
    stats = dep.cluster.actor(head).stats
    assert stats.get("dup_writes", 0) >= 1
    # a fresh rid executes normally
    ctx2 = RequestContext(origin="raw", req_id="raw.2")
    r3 = dep.sim.run_future(
        port.request(head, "put", {"key": "k", "val": "v2"}, timeout=5.0,
                     ctx=ctx2))
    assert r3.type == "ok"
    dep.sim.run_until(dep.sim.now + 0.5)
    assert dep.sim.run_future(client.get("k")) == "v2"


def test_client_stamps_unique_rids_on_mutations():
    dep, client, recorder = build()
    dep.sim.run_future(client.put("a", "1"))
    dep.sim.run_future(client.put("b", "2"))
    dep.sim.run_future(client.delete("a"))
    dep.sim.run_until(dep.sim.now + 0.5)
    # every mutation opened a root span carrying a distinct rid
    roots = [s for s in recorder.spans if s.name in ("op:put", "op:del")]
    assert len(roots) == 3


# ---------------------------------------------------------------------------
# oracle: ghost writes vs exactly-once
# ---------------------------------------------------------------------------
def _timeout_retry_history():
    """v2 was acked after one timeout retry; v3 then lands; a read sees
    v2 again.  Legal only if the fabric may have duplicated v2."""
    return [
        OpRecord(op_id=1, client="c0", op="put", key="k", value="v2",
                 invoke=0.0, response=3.0, status="ok",
                 attempts=2, timeouts=1, req_id="c0.1"),
        OpRecord(op_id=2, client="c0", op="put", key="k", value="v3",
                 invoke=4.0, response=5.0, status="ok",
                 attempts=1, timeouts=0, req_id="c0.2"),
        OpRecord(op_id=3, client="c0", op="get", key="k", value=None,
                 invoke=6.0, response=7.0, status="ok", result="v2"),
    ]


def test_oracle_allows_ghost_duplicate_without_dedup():
    assert check_linearizable(_timeout_retry_history()).ok


def test_oracle_exact_once_forbids_ghost_duplicate():
    report = check_linearizable(_timeout_retry_history(), exact_once=True)
    assert not report.ok


def test_oracle_record_without_rid_falls_back_to_attempts():
    # no req_id: every extra attempt is a potential duplicate even
    # without timeouts being recorded
    history = [
        OpRecord(op_id=1, client="c0", op="put", key="k", value="v2",
                 invoke=0.0, response=3.0, status="ok", attempts=2),
        OpRecord(op_id=2, client="c0", op="put", key="k", value="v3",
                 invoke=4.0, response=5.0, status="ok"),
        OpRecord(op_id=3, client="c0", op="get", key="k", value=None,
                 invoke=6.0, response=7.0, status="ok", result="v2"),
    ]
    assert check_linearizable(history).ok


# ---------------------------------------------------------------------------
# metrics plane
# ---------------------------------------------------------------------------
def test_histogram_percentiles_track_known_distribution():
    h = Histogram()
    for v in range(1, 1001):  # 1..1000 ms, uniform
        h.observe(v / 1e3)
    snap = h.snapshot()
    assert snap["count"] == 1000.0
    assert snap["min"] == pytest.approx(0.001)
    assert snap["max"] == pytest.approx(1.0)
    assert snap["mean"] == pytest.approx(0.5005)
    # log buckets (25% growth) guarantee ~12% relative quantile error
    assert snap["p50"] == pytest.approx(0.5, rel=0.15)
    assert snap["p95"] == pytest.approx(0.95, rel=0.15)
    assert snap["p99"] == pytest.approx(0.99, rel=0.15)


def test_histogram_empty_and_zero_samples():
    h = Histogram()
    assert h.snapshot()["p50"] == 0.0
    h.observe(0.0)  # same-tick duration must not feed log(0)
    assert h.snapshot()["count"] == 1.0


def test_registry_groups_scrape_live_sources():
    reg = MetricsRegistry()
    live = {"ops": 1}
    reg.register_group("static", live)
    reg.register_group("lazy", lambda: {"depth": 4})
    live["ops"] = 7  # mutated after registration: snapshot sees it
    snap = reg.snapshot()
    assert snap["groups"]["static"] == {"ops": 7.0}
    assert snap["groups"]["lazy"] == {"depth": 4.0}
    reg.counter("sent").inc(3)
    reg.gauge("depth").set(2)
    snap = reg.snapshot()
    assert snap["counters"]["sent"] == 3.0
    assert snap["gauges"]["depth"] == 2.0


def test_collect_registry_scrapes_cluster_without_messages():
    dep, client, _ = build(trace=False)
    drive(dep, client, ops=12)
    sent_before = dep.cluster.sim.now
    snap = collect_registry(dep)
    assert dep.cluster.sim.now == sent_before  # zero simulation activity
    groups = snap["groups"]
    # every layer registered a group: client, controlets ("c<shard>.<pos>"),
    # datalets ("d<shard>.<pos>"), coordinator
    assert any(name.startswith("client.") for name in groups)
    assert "c0.0" in groups and "d0.0" in groups
    assert "coordinator" in groups
    # controlet stats absorbed into the plane include the dedup counter
    assert groups["c0.0"].get("puts", 0) > 0
    # datalet op counts flow through the metrics_group hook
    assert groups["d0.0"].get("ops_put", 0) > 0
    client_stats = groups[f"client.{client.name}"]
    assert client_stats["ops"] >= 12
    # client latency histograms fed by the op path
    assert any(name.startswith("client.c0.latency_") and v["count"] > 0
               for name, v in snap["histograms"].items())


def test_batch_metrics_populated_and_seed_stable():
    """The batching tier's instruments — batch size histograms, per-
    controlet coalesce ratios, WAL fsyncs-per-op — land in the registry
    and are bit-identical for a fixed seed."""
    from repro.client import PipelinedClient

    def run(seed):
        dep = Deployment(
            DeploymentSpec(shards=1, replicas=3, topology=Topology.AA,
                           consistency=Consistency.EVENTUAL, seed=seed,
                           durable=True)
        )
        dep.start()
        client = dep.client("c0")
        dep.sim.run_future(client.connect())
        pipe = PipelinedClient(client, window=8, window_max=32)
        for i in range(150):
            pipe.put(f"k{i % 10}", f"v{i}")
        dep.sim.run_future(pipe.drain(), timeout=120.0)
        pipe.stop()
        dep.sim.run_until(dep.sim.now + 1.0)
        return collect_registry(dep)

    snap = run(11)
    # sequencer group commit engaged: size histogram fed, >1 op/batch
    hist = snap["histograms"]["batch.group_commit_size"]
    assert hist["count"] > 0
    ratios = [g["coalesce_ratio"] for g in snap["groups"].values()
              if "group_commits" in g]
    assert ratios and max(ratios) > 1.0
    # WAL group commit amortizes fsyncs below one per logged record
    datalet = snap["groups"]["d0.0"]
    assert 0.0 < datalet["wal_fsyncs_per_op"] < 1.0
    # pipelining plane is scraped too
    assert snap["groups"]["client.c0.pipeline"]["completed"] == 150.0
    # the whole registry — counters, gauges, histograms, groups — is
    # seed-stable: adaptive windowing ran on the virtual clock only
    assert snap == run(11)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_trace_cli_smoke(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    rc = main(["trace", "--combo", "ms_sc", "--seed", "1", "--ops", "24",
               "--out", str(out), "--check"])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "span tree: well-formed" in printed
    assert "op:put" in printed
    header = out.read_text().splitlines()[0]
    assert TRACE_FORMAT in header
