"""Tests for the Bloom filter and its integration into the LSM engine."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.datalet import LSMEngine
from repro.datalet.bloom import BloomFilter


def test_no_false_negatives_basic():
    bloom = BloomFilter(expected_items=100)
    keys = [f"k{i}" for i in range(100)]
    for k in keys:
        bloom.add(k)
    assert all(bloom.might_contain(k) for k in keys)


def test_false_positive_rate_near_target():
    n = 2000
    bloom = BloomFilter(expected_items=n, false_positive_rate=0.01)
    for i in range(n):
        bloom.add(f"member{i}")
    fp = sum(1 for i in range(10_000) if bloom.might_contain(f"absent{i}"))
    assert fp / 10_000 < 0.05  # target 1%, generous bound


def test_build_classmethod():
    bloom = BloomFilter.build(["a", "b", "c"])
    assert len(bloom) == 3
    assert bloom.might_contain("a")


def test_empty_build():
    bloom = BloomFilter.build([])
    assert not bloom.might_contain("anything") or True  # no crash; tiny table


def test_invalid_params():
    with pytest.raises(ValueError):
        BloomFilter(0)
    with pytest.raises(ValueError):
        BloomFilter(10, false_positive_rate=0.0)
    with pytest.raises(ValueError):
        BloomFilter(10, false_positive_rate=1.0)


@settings(max_examples=60, deadline=None)
@given(members=st.lists(st.text(max_size=8), unique=True, min_size=1, max_size=80))
def test_property_no_false_negatives(members):
    bloom = BloomFilter.build(members)
    assert all(bloom.might_contain(m) for m in members)


def test_lsm_reads_correct_with_bloom_filters():
    """Bloom integration must never change results, only skip work."""
    e = LSMEngine(memtable_limit=8, max_sstables=4)
    for i in range(100):
        e.put(f"k{i:03d}", str(i))
    for i in range(0, 100, 3):
        e.delete(f"k{i:03d}")
    for i in range(100):
        key = f"k{i:03d}"
        if i % 3 == 0:
            assert not e.contains(key)
        else:
            assert e.get(key) == str(i)
    assert not e.contains("never-inserted")
