"""Tests for the actor framework and the simulated cluster transport."""

import pytest

from repro.datalet import DataletActor, HashTableEngine
from repro.errors import BespoError, RequestTimeout
from repro.net import Actor, Message, SimCluster


class Echo(Actor):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.register("ping", lambda m: self.respond(m, "pong", {"n": m.payload["n"]}))


def make_cluster(**kw):
    c = SimCluster(**kw)
    return c


def test_message_response_correlation():
    m = Message("get", {"key": "a"}, src="c1", dst="d1")
    r = m.response("value", {"val": "x"})
    assert r.reply_to == m.msg_id
    assert (r.src, r.dst) == ("d1", "c1")


def test_message_size_accounts_for_payload():
    small = Message("put", {"key": "k", "val": "v"})
    big = Message("put", {"key": "k", "val": "v" * 1000})
    assert big.size_bytes() - small.size_bytes() == 999


def test_message_size_nested_types():
    m = Message("x", {"items": [("a", "bb")], "data": {"k": "vvv"}, "n": 7})
    assert m.size_bytes() > 64


def test_request_response_roundtrip():
    c = make_cluster()
    c.add_actor(Echo("e1"))
    port = c.add_port("client")
    c.start()
    fut = port.request("e1", "ping", {"n": 5})
    resp = c.sim.run_future(fut)
    assert resp.type == "pong" and resp.payload["n"] == 5
    assert c.sim.now > 0  # network latency elapsed


def test_unknown_destination_times_out():
    c = make_cluster()
    port = c.add_port("client")
    c.start()
    fut = port.request("ghost", "ping", {}, timeout=0.5)
    with pytest.raises(RequestTimeout):
        c.sim.run_future(fut)


def test_unhandled_message_type_returns_error():
    c = make_cluster()
    c.add_actor(Echo("e1"))
    port = c.add_port("client")
    c.start()
    resp = c.sim.run_future(port.request("e1", "bogus", {}))
    assert resp.type == "error"


def test_dead_actor_ignores_messages():
    c = make_cluster()
    c.add_actor(Echo("e1"))
    port = c.add_port("client")
    c.start()
    c.kill_host("e1")
    fut = port.request("e1", "ping", {"n": 1}, timeout=0.5)
    with pytest.raises(RequestTimeout):
        c.sim.run_future(fut)


def test_kill_host_stops_timers():
    class Ticker(Actor):
        def __init__(self):
            super().__init__("t1")
            self.ticks = 0

        def on_start(self):
            self.set_timer(1.0, self._tick)

        def _tick(self):
            self.ticks += 1
            self.set_timer(1.0, self._tick)

    c = make_cluster()
    t = Ticker()
    c.add_actor(t)
    c.start()
    c.sim.run_until(3.5)
    assert t.ticks == 3
    c.kill_host("t1")
    c.sim.run_until(10.0)
    assert t.ticks == 3


def test_late_response_after_timeout_dropped():
    class Slow(Actor):
        def __init__(self):
            super().__init__("s1")
            self.register("ping", self._on_ping)

        def _on_ping(self, m):
            self.set_timer(2.0, lambda: self.respond(m, "pong"))

    c = make_cluster()
    c.add_actor(Slow())
    port = c.add_port("client")
    c.start()
    fut = port.request("s1", "ping", {}, timeout=0.5)
    with pytest.raises(RequestTimeout):
        c.sim.run_future(fut)
    c.sim.run_until(5.0)  # late pong arrives and must be ignored silently


def test_emit_requires_handler():
    a = Echo("e")
    with pytest.raises(BespoError):
        a.emit("nothing")


def test_extended_events_dispatch():
    a = Echo("e")
    seen = []
    a.on("custom", lambda x: seen.append(x))
    a.emit("custom", 42)
    assert seen == [42]


def test_send_requires_attachment():
    a = Echo("e")
    with pytest.raises(BespoError):
        a.send("x", "ping")


def test_duplicate_actor_id_rejected():
    c = make_cluster()
    c.add_actor(Echo("e1"))
    with pytest.raises(BespoError):
        c.add_actor(Echo("e1"))


def test_duplicate_host_rejected():
    c = make_cluster()
    c.add_host("h1")
    with pytest.raises(BespoError):
        c.add_host("h1")


def test_colocated_actors_share_host_cpu():
    c = make_cluster()
    c.add_host("h1")
    c.add_actor(Echo("e1"), host="h1")
    c.add_actor(Echo("e2"), host="h1")
    assert c.host_of("e1") == c.host_of("e2") == "h1"
    assert c.host_cpu("h1") is c.host_cpu("h1")


def test_actor_added_after_start_gets_on_start():
    started = []

    class Probe(Actor):
        def on_start(self):
            started.append(self.node_id)

    c = make_cluster()
    c.start()
    c.add_actor(Probe("late"))
    c.sim.run_until(0.1)
    assert started == ["late"]


def test_forward_preserves_correlation():
    class Router(Actor):
        def __init__(self):
            super().__init__("r1")
            self.register("ping", lambda m: self.forward(m, "e1"))

    c = make_cluster()
    c.add_actor(Router())
    c.add_actor(Echo("e1"))
    port = c.add_port("client")
    c.start()
    resp = c.sim.run_future(port.request("r1", "ping", {"n": 9}))
    assert resp.type == "pong" and resp.payload["n"] == 9


def test_datalet_actor_end_to_end():
    c = make_cluster()
    c.add_actor(DataletActor("d1", HashTableEngine()))
    port = c.add_port("client")
    c.start()

    def run(type_, payload):
        return c.sim.run_future(port.request("d1", type_, payload))

    assert run("put", {"key": "a", "val": "1"}).type == "ok"
    assert run("get", {"key": "a"}).payload["val"] == "1"
    assert run("del", {"key": "a"}).type == "ok"
    assert run("get", {"key": "a"}).payload["error"] == "not_found"
    assert run("scan", {"start": "a", "end": "z"}).payload["error"]


def test_datalet_snapshot_restore_over_network():
    c = make_cluster()
    c.add_actor(DataletActor("d1", HashTableEngine()))
    c.add_actor(DataletActor("d2", HashTableEngine()))
    port = c.add_port("client")
    c.start()
    for i in range(10):
        c.sim.run_future(port.request("d1", "put", {"key": f"k{i}", "val": str(i)}))
    snap = c.sim.run_future(port.request("d1", "snapshot", {})).payload["data"]
    c.sim.run_future(port.request("d2", "restore", {"data": snap}))
    assert c.sim.run_future(port.request("d2", "get", {"key": "k7"})).payload["val"] == "7"


def test_cpu_contention_creates_queueing():
    """Two hosts, one gets 10x the requests: its responses finish later."""
    c = make_cluster()
    c.add_actor(DataletActor("d1", HashTableEngine()))
    port = c.add_port("client")
    c.start()
    futs = [port.request("d1", "put", {"key": f"k{i}", "val": "v"}) for i in range(200)]
    done = c.sim.gather(futs)
    c.sim.run_future(done)
    cpu = c.host_cpu("d1")
    assert cpu.completions == 200
    assert cpu.max_queue > 0  # burst had to queue
