"""Tests for the static handler summaries (repro.analysis.summaries)."""

import textwrap

from repro.analysis.summaries import (
    DATALET_ATTR,
    HandlerFootprint,
    build_from_sources,
    build_summaries,
    datalet_footprint,
)


def build(source, path="core/x.py"):
    return build_from_sources([(path, textwrap.dedent(source))])


# ---------------------------------------------------------------------------
# footprint extraction
# ---------------------------------------------------------------------------
def test_reads_writes_and_transitive_helpers():
    table = build(
        """
        class C:
            def __init__(self):
                self.register("a", self._on_a)
                self.register("b", self._on_b)
            def _on_a(self, msg):
                self._count = self._count + 1
                self._bump()
            def _bump(self):
                self._high = self._count
            def _on_b(self, msg):
                return self._other
        """
    )
    s = table.classes["C"]
    fa, fb = s.footprint("a"), s.footprint("b")
    assert fa.writes >= {"_count", "_high"}
    assert "_count" in fa.reads
    assert fb.reads == {"_other"} and not fb.writes
    assert not s.commutes("a", "a")     # write/write on _count
    assert s.commutes("b", "b")         # read-only
    assert fa.conflicts(fb) is False    # disjoint slices
    assert s.commutes("a", "b")


def test_datalet_call_charges_the_engine_pseudo_attribute():
    table = build(
        """
        class C:
            def __init__(self):
                self.register("put", self._on_put)
                self.register("get", self._on_get)
                self.register("stats", self._on_stats)
            def _on_put(self, msg):
                self.datalet_call("put", {"key": 1}, callback=None)
            def _on_get(self, msg):
                self.datalet_call("get", {"key": 1}, callback=None)
            def _on_stats(self, msg):
                self.datalet_call("stats", {})
        """
    )
    s = table.classes["C"]
    assert DATALET_ATTR in s.footprint("put").writes
    assert DATALET_ATTR in s.footprint("get").reads
    assert DATALET_ATTR not in s.footprint("get").writes
    # engine write vs engine read: must NOT commute
    assert not s.commutes("put", "get")
    # two engine reads commute
    assert s.commutes("get", "stats")


def test_dynamic_datalet_op_is_charged_both_ways():
    table = build(
        """
        class C:
            def __init__(self):
                self.register("w", self._on_w)
            def _on_w(self, msg):
                self.datalet_call(msg.payload["op"], {})
        """
    )
    fp = table.classes["C"].footprint("w")
    assert DATALET_ATTR in fp.reads and DATALET_ATTR in fp.writes


def test_lambda_registration_is_opaque():
    table = build(
        """
        class C:
            def __init__(self):
                self.register("z", lambda m: None)
                self.register("r", self._on_r)
            def _on_r(self, msg):
                return self._x
        """
    )
    s = table.classes["C"]
    assert s.footprint("z").opaque
    assert not s.commutes("z", "r")  # opaque commutes with nothing


# ---------------------------------------------------------------------------
# inheritance
# ---------------------------------------------------------------------------
def test_base_registration_resolves_against_the_concrete_class():
    """A handler registered by the base but dispatching to an overridden
    hook must be summarized with the subclass's override."""
    table = build(
        """
        class Base:
            def __init__(self):
                self.register("put", self._on_put)
            def _on_put(self, msg):
                self.handle_put(msg)
            def handle_put(self, msg):
                raise NotImplementedError

        class Derived(Base):
            def handle_put(self, msg):
                self._applied = msg
        """
    )
    fp = table.classes["Derived"].footprint("put")
    assert "_applied" in fp.writes
    # and the base's own summary reflects the abstract hook (no writes)
    base_fp = table.classes["Base"].footprint("put")
    assert "_applied" not in base_fp.writes


def test_subclass_override_shadows_base_binding_in_chain_merge():
    table = build(
        """
        class Base:
            def __init__(self):
                self.register("t", self._base_t)
            def _base_t(self, msg):
                self._b = 1

        class Sub(Base):
            def __init__(self):
                self.register("t", self._sub_t)
            def _sub_t(self, msg):
                self._s = 1
        """
    )
    merged = table.for_class_chain(["Sub", "Base"])
    assert "_s" in merged.footprint("t").writes


# ---------------------------------------------------------------------------
# real package
# ---------------------------------------------------------------------------
def test_package_summaries_capture_the_protocol_core():
    table = build_summaries()
    ms = table.classes["MSStrongControlet"]
    put = ms.footprint("put")
    assert put is not None and DATALET_ATTR in put.writes
    assert not ms.commutes("put", "put")
    assert not ms.commutes("get", "chain_put")  # engine read vs write
    ec = table.classes["MSEventualControlet"]
    assert not ec.commutes("replicate", "replicate")  # both advance _stream
    assert not ec.commutes("put", "get")


def test_datalet_footprint_vocabulary_matches():
    put = datalet_footprint("put")
    get = datalet_footprint("get")
    assert put.conflicts(get)
    assert not get.conflicts(datalet_footprint("snapshot"))
    # synthesized footprints conflict with controlet engine access
    ctl = HandlerFootprint(method="h", writes={DATALET_ATTR})
    assert put.conflicts(ctl) and get.conflicts(ctl)
