"""Tests for the load-generation harness."""

import pytest

from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.harness.loadgen import LoadGenerator, RunResult, preload
from repro.workloads import YCSB_A, YCSB_B, make_workload


def make_dep(**kw):
    spec = DeploymentSpec(
        shards=2, replicas=3,
        topology=kw.pop("topology", Topology.MS),
        consistency=kw.pop("consistency", Consistency.EVENTUAL),
        **kw,
    )
    dep = Deployment(spec)
    dep.start()
    return dep


def test_preload_routes_like_the_client():
    dep = make_dep()
    items = {f"k{i}": str(i) for i in range(100)}
    preload(dep, items)
    client = dep.client("c")
    dep.sim.run_future(client.connect())
    # every key is immediately readable through normal routing
    for k in ("k0", "k42", "k99"):
        assert dep.sim.run_future(client.get(k)) == items[k]


def test_preload_populates_every_replica():
    dep = make_dep()
    preload(dep, {"solo": "v"})
    holders = [
        r.datalet
        for sid in dep.map.shard_ids()
        for r in dep.map.shard(sid).ordered()
        if dep.cluster.actor(r.datalet).engine.contains("solo")
    ]
    assert len(holders) == 3  # one shard's full replica set


def test_loadgen_produces_consistent_result():
    dep = make_dep()
    wl0 = make_workload(YCSB_B, keys=500, seed=9)
    preload(dep, {wl0.space.key(i): "v" for i in range(500)})
    lg = LoadGenerator(
        dep, lambda i: make_workload(YCSB_B, keys=500, seed=i),
        clients=4, sessions_per_client=4, warmup=0.2, duration=1.0,
    )
    res = lg.run()
    assert isinstance(res, RunResult)
    assert res.ops > 100
    assert res.errors == 0
    assert res.qps == pytest.approx(res.ops / 1.0)
    assert 0 < res.p50_ms <= res.p95_ms <= res.p99_ms
    assert res.op_counts["get"] > res.op_counts["put"]  # 95% GET


def test_loadgen_timeline_buckets_cover_run():
    dep = make_dep()
    wl0 = make_workload(YCSB_A, keys=200, seed=9)
    preload(dep, {wl0.space.key(i): "v" for i in range(200)})
    lg = LoadGenerator(
        dep, lambda i: make_workload(YCSB_A, keys=200, seed=i),
        clients=2, sessions_per_client=4, warmup=0.5, duration=1.5,
        timeline_interval=0.5,
    )
    res = lg.run()
    times = [t for t, _ in res.timeline]
    assert times[0] == 0.0 and times[-1] >= 1.5
    assert all(q > 0 for t, q in res.timeline if 0.5 <= t < 1.9)


def test_loadgen_write_only_workload():
    from repro.workloads import OpMix

    dep = make_dep()
    lg = LoadGenerator(
        dep, lambda i: make_workload(OpMix(put=1.0), keys=300, seed=i),
        clients=2, sessions_per_client=2, warmup=0.2, duration=0.8,
    )
    res = lg.run()
    assert res.errors == 0
    assert res.op_counts["put"] > 0 and res.op_counts["get"] == 0


def test_loadgen_deterministic_given_seed():
    def run_once():
        dep = make_dep(seed=5)
        wl0 = make_workload(YCSB_B, keys=300, seed=9)
        preload(dep, {wl0.space.key(i): "v" for i in range(300)})
        lg = LoadGenerator(
            dep, lambda i: make_workload(YCSB_B, keys=300, seed=i),
            clients=2, sessions_per_client=3, warmup=0.2, duration=0.8,
        )
        return lg.run()

    a, b = run_once(), run_once()
    assert a.ops == b.ops
    assert a.mean_latency_ms == pytest.approx(b.mean_latency_ms)


def test_runresult_str_formatting():
    res = RunResult(ops=1000, errors=2, duration=1.0, qps=1000.0,
                    mean_latency_ms=1.5, p50_ms=1.0, p95_ms=3.0, p99_ms=5.0)
    text = str(res)
    assert "1,000 QPS" in text and "errs=2" in text
