"""Tests for the protocol-conformance checker (repro.analysis.conformance)."""

import textwrap

from repro.analysis import check_sources, check_tree, package_root

TOY = textwrap.dedent(
    """
    class Ping:
        def __init__(self):
            self.register("pong_ready", self._on_ready)
            self.register("admin_dump", self._on_dump)  # protocol: external
            self.register("never_sent", self._on_never)

        def go(self):
            self.send("peer", "ping", {})
            self.call("peer", "rpc", {}, callback=self._cb)
            self.send("peer", "lost_type", {})
            self._fire("relay")

        def _fire(self, kind):
            self.send("peer", kind, {})

        def _cb(self, resp, err):
            if resp.type == "rpc_done":
                return
            if resp.type in ("rare_reply", "error"):
                return


    class Pong:
        def __init__(self):
            self.register("ping", self._on_ping)
            self.register("rpc", self._on_rpc)
            self.register("relay", self._on_relay)
            for op in ("batch_a", "batch_b"):
                self.register(op, self._on_batch)

        def _on_ping(self, msg):
            self.respond(msg, "pong_ready", {})

        def _on_rpc(self, msg):
            self.respond(msg, "rpc_done", {})

        def kick(self):
            self.send("self", "batch_a", {})
            self.send("self", "batch_b", {})
    """
)


def toy_model():
    return check_sources([("toy/actors.py", TOY)])


def by_rule(findings):
    out = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f)
    return out


def test_direct_and_forwarded_sends_resolve():
    m = toy_model()
    assert m.senders("ping") == ["Ping"]
    assert m.senders("rpc") == ["Ping"]
    # constant flows through the _fire(kind) forwarder
    assert m.senders("relay") == ["Ping"]
    assert m.handlers("relay") == ["Pong"]


def test_for_loop_register_expansion():
    m = toy_model()
    assert m.handlers("batch_a") == ["Pong"]
    assert m.handlers("batch_b") == ["Pong"]


def test_sent_unhandled_reported():
    findings = by_rule(toy_model().findings())
    assert [f for f in findings["sent-unhandled"] if "lost_type" in f.message]
    handled = {"ping", "rpc", "relay", "batch_a", "batch_b"}
    for t in handled:
        assert not any(f"'{t}'" in f.message for f in findings["sent-unhandled"])


def test_registered_unsent_and_external_pragma():
    findings = by_rule(toy_model().findings())
    unsent = {f.message.split("'")[1]: f for f in findings["registered-unsent"]}
    assert "never_sent" in unsent and not unsent["never_sent"].suppressed
    # declared external: still listed, but suppressed
    assert "admin_dump" in unsent and unsent["admin_dump"].suppressed
    # respond() is not a send: responses route to pending callbacks, so
    # registering a handler for a response-only type is dead code (the
    # ms_ec sync_snapshot case) and stays flagged
    assert "pong_ready" in unsent


def test_expected_response_missing_is_warning():
    m = toy_model()
    findings = by_rule(m.findings())
    missing = findings.get("expected-response-missing", [])
    # rpc_done is responded, "error" is blessed; rare_reply is never produced
    types = {f.message.split("'")[1] for f in missing}
    assert types == {"rare_reply"}
    assert all(f.severity == "warning" for f in missing)


def test_respond_types_tracked():
    m = toy_model()
    assert "pong_ready" in m.responded
    assert "rpc_done" in m.responded


def test_real_tree_has_no_unsuppressed_errors():
    model = check_tree(package_root())
    bad = [
        f for f in model.findings()
        if not f.suppressed and f.severity == "error"
    ]
    assert bad == [], "\n".join(f.format() for f in bad)


def test_real_tree_resolves_known_protocol_types():
    m = check_tree(package_root())
    # chain-replication sync pull: sent via sync_recover's pull_type
    # constant, handled by the same controlet class
    assert "MSStrongControlet" in m.senders("tail_sync_pull")
    assert "MSStrongControlet" in m.handlers("tail_sync_pull")
    # client scan reaches the range controlet
    assert "KVClient" in m.senders("get_range")
    assert "RangeQueryControlet" in m.handlers("get_range")
    # the operator-driven trim is declared external, not dead
    assert "log_trim" in m.external
