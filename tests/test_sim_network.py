"""Unit tests for the network model, RNG registry and cost model."""

import pytest

from repro.sim import CostModel, DEFAULT_COSTS, Network, NetworkParams, RngRegistry, Simulator


def make_net(sim, **kw):
    return Network(sim, NetworkParams(**kw), RngRegistry(42))


def test_delivery_after_latency():
    sim = Simulator()
    net = make_net(sim, one_way_latency=1e-3, jitter_frac=0.0)
    arrived = []
    net.send("a", "b", 0, lambda: arrived.append(sim.now))
    sim.run()
    assert arrived == [pytest.approx(1e-3)]


def test_bandwidth_component():
    sim = Simulator()
    net = make_net(sim, one_way_latency=0.0, bandwidth=1000.0, jitter_frac=0.0)
    arrived = []
    net.send("a", "b", 500, lambda: arrived.append(sim.now))
    sim.run()
    assert arrived == [pytest.approx(0.5)]


def test_loopback_is_cheap():
    sim = Simulator()
    net = make_net(sim, one_way_latency=1e-3, loopback_latency=1e-6, jitter_frac=0.0)
    assert net.delay("a", "a", 1000) == pytest.approx(1e-6)


def test_jitter_bounded_and_reproducible():
    params = NetworkParams(one_way_latency=1e-3, jitter_frac=0.2)

    def sample():
        net = Network(Simulator(), params, RngRegistry(7))
        return [net.delay("a", "b", 0) for _ in range(100)]

    s1, s2 = sample(), sample()
    assert s1 == s2
    for d in s1:
        assert 1e-3 <= d <= 1e-3 * 1.2 + 1e-12


def test_kill_drops_messages_both_directions():
    sim = Simulator()
    net = make_net(sim)
    net.kill("b")
    assert not net.send("a", "b", 0, lambda: pytest.fail("delivered to dead node"))
    assert not net.send("b", "a", 0, lambda: pytest.fail("delivered from dead node"))
    sim.run()
    assert net.messages_dropped == 2


def test_revive_restores_delivery():
    sim = Simulator()
    net = make_net(sim)
    net.kill("b")
    net.revive("b")
    arrived = []
    assert net.send("a", "b", 0, lambda: arrived.append(1))
    sim.run()
    assert arrived == [1]


def test_partition_and_heal():
    sim = Simulator()
    net = make_net(sim)
    net.partition("a", "b")
    assert not net.send("a", "b", 0, lambda: None)
    assert not net.send("b", "a", 0, lambda: None)
    assert net.send("a", "c", 0, lambda: None)
    net.heal("a", "b")
    assert net.send("a", "b", 0, lambda: None)


def test_network_stats():
    sim = Simulator()
    net = make_net(sim)
    net.send("a", "b", 100, lambda: None)
    net.send("a", "b", 50, lambda: None)
    sim.run()
    assert net.messages_sent == 2
    assert net.bytes_sent == 150


def test_rng_streams_independent():
    reg = RngRegistry(1)
    a1 = [reg.stream("a").random() for _ in range(5)]
    # interleaving draws from another stream must not disturb "a"
    reg2 = RngRegistry(1)
    b = reg2.stream("b")
    a2 = []
    for _ in range(5):
        b.random()
        a2.append(reg2.stream("a").random())
    assert a1 == a2


def test_rng_seed_changes_streams():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_cost_model_lsm_vs_btree_asymmetry():
    c = DEFAULT_COSTS
    # Fig 6 shape: LSM cheaper writes, B+tree cheaper reads.
    assert c.datalet_cost("lsm", "put") < c.datalet_cost("mt", "put")
    assert c.datalet_cost("mt", "get") < c.datalet_cost("lsm", "get")
    # log is the slowest of the three on reads
    assert c.datalet_cost("log", "get") > c.datalet_cost("lsm", "get")


def test_cost_model_scan_scales_with_items():
    c = DEFAULT_COSTS
    assert c.datalet_cost("mt", "scan", items=100) > c.datalet_cost("mt", "scan", items=1)


def test_cost_model_unknown_op_raises():
    with pytest.raises(KeyError):
        DEFAULT_COSTS.datalet_cost("ht", "scan")


def test_dpdk_cheaper_than_socket():
    c = CostModel()
    assert c.msg_cost(dpdk=True) < c.msg_cost(dpdk=False)
