"""Unit tests for the epoch'd cluster membership view.

``ClusterView`` is the single mutation path for routing state: every
epoch bump is a named transition, reshards open/close a double-ring
window, and peer sync (``install``) is epoch-fenced.  These tests pin
the contract every consumer — coordinator, standbys, controlets,
clients, the model checker's fingerprints — now leans on.
"""

import pytest

from repro.cluster.view import (
    LOG_CAP,
    RESHARD_ADD,
    RESHARD_REMOVE,
    ClusterView,
    ViewTransition,
)
from repro.core.types import (
    ClusterMap,
    Consistency,
    Replica,
    ShardInfo,
    Topology,
)
from repro.errors import ConfigError


def _map(n=2, epoch=1):
    cmap = ClusterMap()
    for i in range(n):
        sid = f"s{i}"
        cmap.shards[sid] = ShardInfo(
            shard_id=sid,
            topology=Topology.MS,
            consistency=Consistency.STRONG,
            replicas=[
                Replica(f"c{i}.0", f"d{i}.0", f"h{i}.0", 0),
                Replica(f"c{i}.1", f"d{i}.1", f"h{i}.1", 1),
            ],
        )
    cmap.epoch = epoch
    return cmap


# ---------------------------------------------------------------------------
# epoch bookkeeping and the transition log
# ---------------------------------------------------------------------------
def test_commit_is_the_only_epoch_bump_path():
    view = ClusterView(_map())
    e0 = view.epoch
    t = view.commit("failover", "s0: head c0.0 -> c0.1")
    assert view.epoch == e0 + 1
    assert t == ViewTransition("failover", e0 + 1, "s0: head c0.0 -> c0.1")
    assert view.log[-1] is t


def test_note_records_without_versioning():
    view = ClusterView(_map())
    e0 = view.epoch
    view.note("observed", "standby caught up")
    assert view.epoch == e0
    assert view.log[-1].kind == "observed"


def test_bootstrap_transition_lists_members():
    view = ClusterView(_map(3))
    assert view.log[0].kind == "bootstrap"
    assert view.log[0].detail == "s0,s1,s2"


def test_log_is_bounded():
    view = ClusterView(_map())
    for i in range(LOG_CAP * 2):
        view.commit("failover", f"n{i}")
    assert len(view.log) == LOG_CAP
    # the newest entries survive, the oldest are dropped
    assert view.log[-1].detail == f"n{LOG_CAP * 2 - 1}"
    assert all(t.detail != "n0" for t in view.log)


# ---------------------------------------------------------------------------
# the double-ring reshard window
# ---------------------------------------------------------------------------
def test_begin_reshard_add_opens_window_and_bumps():
    view = ClusterView(_map(2))
    e0, g0 = view.epoch, view.ring_gen
    view.begin_reshard(RESHARD_ADD, "s2")
    assert view.epoch == e0 + 1 and view.ring_gen == g0 + 1
    assert view.reshard == {
        "action": "add", "shard": "s2", "gen": g0 + 1,
        "old": ["s0", "s1"], "new": ["s0", "s1", "s2"],
    }
    # the authoritative ring is the NEW ring while the window is open
    assert view.ring_members() == ["s0", "s1", "s2"]
    info = view.ring_info()
    assert info["gen"] == g0 + 1 and info["reshard"]["old"] == ["s0", "s1"]


def test_begin_reshard_remove_keeps_survivors():
    view = ClusterView(_map(3))
    view.begin_reshard(RESHARD_REMOVE, "s0")
    assert view.reshard["new"] == ["s1", "s2"]
    assert view.ring_members() == ["s1", "s2"]


def test_commit_reshard_closes_window_and_bumps_again():
    view = ClusterView(_map(2))
    view.begin_reshard(RESHARD_ADD, "s2")
    e_open = view.epoch
    t = view.commit_reshard()
    assert view.reshard is None
    assert view.epoch == e_open + 1
    assert t.kind == "reshard-commit" and "add:s2" in t.detail
    assert "reshard" not in view.ring_info()


def test_reshard_guards():
    view = ClusterView(_map(2))
    with pytest.raises(ConfigError):
        view.begin_reshard("split", "s9")  # unknown action
    with pytest.raises(ConfigError):
        view.begin_reshard(RESHARD_ADD, "s0")  # already present
    with pytest.raises(ConfigError):
        view.begin_reshard(RESHARD_REMOVE, "s9")  # not present
    with pytest.raises(ConfigError):
        view.commit_reshard()  # no window open
    view.begin_reshard(RESHARD_ADD, "s2")
    with pytest.raises(ConfigError):
        view.begin_reshard(RESHARD_ADD, "s3")  # one window at a time


def test_cannot_remove_last_shard():
    view = ClusterView(_map(1))
    with pytest.raises(ConfigError):
        view.begin_reshard(RESHARD_REMOVE, "s0")


# ---------------------------------------------------------------------------
# peer sync: the install fence
# ---------------------------------------------------------------------------
def test_install_adopts_newer_snapshot_in_place():
    leader = ClusterView(_map(2, epoch=1))
    follower = ClusterView(_map(2, epoch=1))
    held_map = follower.map  # harness/checker hold this object
    leader.begin_reshard(RESHARD_ADD, "s2")
    assert follower.install(leader.to_dict()) is True
    assert follower.map is held_map  # mutated in place, never swapped
    assert follower.epoch == leader.epoch
    assert follower.ring_gen == leader.ring_gen
    assert follower.reshard == leader.reshard
    assert [t.kind for t in follower.log] == [t.kind for t in leader.log]


def test_install_rejects_stale_snapshot():
    view = ClusterView(_map(2, epoch=1))
    stale = ClusterView(_map(2, epoch=1)).to_dict()
    view.commit("failover")  # we are now ahead of the snapshot
    e, g = view.epoch, view.ring_gen
    assert view.install(stale) is False
    assert view.epoch == e and view.ring_gen == g


def test_install_equal_epoch_is_idempotent_repeat():
    leader = ClusterView(_map(2, epoch=1))
    leader.commit("failover")
    snap = leader.to_dict()
    follower = ClusterView(_map(2, epoch=1))
    assert follower.install(snap) is True
    assert follower.install(snap) is True  # duplicate delivery: harmless
    assert follower.epoch == leader.epoch
    assert len(follower.log) == len(leader.log)


def test_view_roundtrips_through_dict():
    view = ClusterView(_map(3))
    view.commit("failover", "s1")
    view.begin_reshard(RESHARD_REMOVE, "s2")
    other = ClusterView(_map(3))
    assert other.install(view.to_dict()) is True
    assert other.to_dict() == view.to_dict()


# ---------------------------------------------------------------------------
# model-checker fingerprint material
# ---------------------------------------------------------------------------
def test_snapshot_is_deterministic_and_clock_free():
    view = ClusterView(_map(2))
    view.commit("failover", "s0")
    view.begin_reshard(RESHARD_ADD, "s2")
    snap = view.snapshot()
    assert snap["ring_gen"] == 1
    assert snap["reshard"] == "add:s2@g1"
    assert snap["transitions"] == [
        ("bootstrap", 1), ("failover", 2), ("reshard-begin", 3)]
    assert snap == view.snapshot()  # stable across calls
    view.commit_reshard()
    assert view.snapshot()["reshard"] is None
