"""Consistency oracle tests.

Synthetic histories pin down the oracle's semantics (what counts as a
violation, what is legitimate indeterminacy), and the broken-chain test
proves the oracle catches a real protocol bug: an MS+SC controlet that
acks writes from the head without waiting for the tail.
"""

import pytest

from repro.chaos import check_eventual, check_linearizable, run_combo
from repro.chaos.history import OpRecord
from repro.chaos.schedule import FaultSchedule
from repro.core.ms_sc import MSStrongControlet
from repro.core.types import Consistency, Topology


def w(key, value, inv, resp, client="c0", status="ok", attempts=1, op_id=0):
    return OpRecord(op_id=op_id, client=client, op="put", key=key, value=value,
                    invoke=inv, response=resp, status=status, attempts=attempts)


def r(key, result, inv, resp, client="c0", status="ok", op_id=0):
    return OpRecord(op_id=op_id, client=client, op="get", key=key, value=None,
                    invoke=inv, response=resp, status=status, result=result)


# ---------------------------------------------------------------------------
# linearizability
# ---------------------------------------------------------------------------
def test_sequential_history_linearizable():
    report = check_linearizable([
        w("k", "a", 0.0, 1.0),
        r("k", "a", 2.0, 3.0),
        w("k", "b", 4.0, 5.0),
        r("k", "b", 6.0, 7.0),
    ])
    assert report.ok and report.stats["keys_checked"] == 1


def test_stale_read_is_a_violation():
    report = check_linearizable([
        w("k", "a", 0.0, 1.0),
        w("k", "b", 2.0, 3.0),
        r("k", "a", 4.0, 5.0),  # b was acked before this read began
    ])
    assert not report.ok
    assert "no valid linearization" in report.violations[0]


def test_read_before_any_write_sees_absence():
    assert check_linearizable([r("k", None, 0.0, 1.0), w("k", "a", 2.0, 3.0)]).ok
    # absence after an acked write (no delete) is a lost update
    assert not check_linearizable([w("k", "a", 0.0, 1.0), r("k", None, 2.0, 3.0)]).ok


def test_concurrent_writes_allow_either_order():
    # two overlapping writes: a read may observe either winner
    for observed in ("a", "b"):
        report = check_linearizable([
            w("k", "a", 0.0, 2.0, client="c0"),
            w("k", "b", 1.0, 3.0, client="c1"),
            r("k", observed, 4.0, 5.0),
        ])
        assert report.ok, observed


def test_failed_write_is_indeterminate():
    # a timed-out write may have landed — reads seeing it are legal,
    # and reads never seeing it are legal too
    base = [w("k", "a", 0.0, 1.0), w("k", "b", 2.0, None, status="fail")]
    assert check_linearizable(base + [r("k", "b", 5.0, 6.0)]).ok
    assert check_linearizable(base + [r("k", "a", 5.0, 6.0)]).ok


def test_retry_duplicate_write_is_permitted():
    """attempts>1 means the same write may have executed twice (no
    exactly-once layer): its value legally resurfaces *after* a later
    acked write."""
    history = [
        w("k", "a", 0.0, 4.0, attempts=2),  # retried; a copy may land late
        w("k", "b", 5.0, 6.0),
        r("k", "a", 7.0, 8.0),  # the duplicate 'a' overwrote 'b'
    ]
    assert check_linearizable(history).ok
    # without the retry, the same shape is a genuine violation
    history[0] = w("k", "a", 0.0, 4.0, attempts=1)
    assert not check_linearizable(history).ok


def test_delete_makes_absence_observable():
    report = check_linearizable([
        w("k", "a", 0.0, 1.0),
        OpRecord(op_id=9, client="c0", op="del", key="k", value=None,
                 invoke=2.0, response=3.0, status="ok"),
        r("k", None, 4.0, 5.0),
    ])
    assert report.ok


def test_keys_checked_independently():
    report = check_linearizable([
        w("a", "1", 0.0, 1.0), r("a", "1", 2.0, 3.0),
        w("b", "1", 0.0, 1.0), r("b", None, 2.0, 3.0),  # only b is broken
    ])
    assert len(report.violations) == 1
    assert "key 'b'" in report.violations[0]


def test_state_budget_inconclusive_is_warning_not_violation():
    # dozens of overlapping writes: the search blows a tiny budget
    ops = [w("k", f"v{i}", 0.0, 100.0, client=f"c{i}", op_id=i) for i in range(30)]
    ops.append(r("k", "v7", 101.0, 102.0))
    report = check_linearizable(ops, max_states=50)
    assert report.ok
    assert any("inconclusive" in warning for warning in report.warnings)


# ---------------------------------------------------------------------------
# eventual consistency
# ---------------------------------------------------------------------------
def test_eventual_validity_flags_fabricated_value():
    report = check_eventual(
        [w("k", "a", 0.0, 1.0), r("k", "z", 2.0, 3.0)],
        replica_dumps={},
    )
    assert not report.ok
    assert "never written" in report.violations[0]


def test_eventual_unacked_write_value_is_still_valid():
    # an unacked put may have landed; reading it is not fabrication
    report = check_eventual(
        [w("k", "a", 0.0, None, status="fail"), r("k", "a", 2.0, 3.0)],
        replica_dumps={},
    )
    assert report.ok


def test_eventual_convergence_flags_divergent_replicas():
    dumps = {"s0": {"d0": {"k": "a"}, "d1": {"k": "a"}, "d2": {"k": "b"}}}
    report = check_eventual([w("k", "a", 0.0, 1.0), w("k", "b", 0.5, 1.5)], dumps)
    assert not report.ok
    assert "diverged" in report.violations[0]
    dumps["s0"]["d2"]["k"] = "a"
    assert check_eventual([w("k", "a", 0.0, 1.0), w("k", "b", 0.5, 1.5)], dumps).ok


def test_eventual_read_your_writes_is_warning_only():
    # EC acks after one replica and reads anywhere: own-stale reads are
    # legitimate staleness, reported but not failed
    report = check_eventual(
        [
            w("k", "old", 0.0, 1.0, client="c0"),
            w("k", "new", 2.0, 3.0, client="c0"),
            r("k", "old", 4.0, 5.0, client="c0"),
        ],
        replica_dumps={},
    )
    assert report.ok
    assert report.stats["stale_session_reads"] == 1
    assert "stale" in report.warnings[0]


# ---------------------------------------------------------------------------
# acceptance: the oracle catches a deliberately broken chain
# ---------------------------------------------------------------------------
class BrokenChainControlet(MSStrongControlet):
    """Acks writes as soon as the head applied locally — never forwards
    down the chain, so tail reads serve stale data."""

    def _forward_down(self, req):
        req.ack()


def test_oracle_flags_broken_chain_as_non_linearizable():
    result = run_combo(
        Topology.MS,
        Consistency.STRONG,
        seed=1,
        duration=4.0,
        shards=1,
        clients=2,
        keys=8,
        quiesce=2.0,
        schedule=FaultSchedule(),  # no faults needed: the bug is the protocol
        spec_overrides={"controlet_class": BrokenChainControlet},
    )
    assert not result.ok
    assert any("no valid linearization" in v for v in result.report.violations)


def test_same_workload_with_correct_chain_passes():
    result = run_combo(
        Topology.MS,
        Consistency.STRONG,
        seed=1,
        duration=4.0,
        shards=1,
        clients=2,
        keys=8,
        quiesce=2.0,
        schedule=FaultSchedule(),
    )
    assert result.ok, result.report.describe()
