"""Unit tests for the cross-PR bench regression guard.

The guard is a CI gate, so its edge behavior matters as much as its
happy path: a missing summary file must read as a guard failure (not a
traceback), a renamed figure key must read as a regression (the figure
the baseline promised is gone), and the thresholds must cut exactly
where the docstring says they do.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_GUARD_PATH = (Path(__file__).resolve().parents[1]
               / "benchmarks" / "bench_guard.py")

spec = importlib.util.spec_from_file_location("bench_guard", _GUARD_PATH)
bench_guard = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_guard)


def _summary(peaks):
    return {"figures": {fig: {"max": peak} for fig, peak in peaks.items()}}


def _write_pair(tmp_path, current_peaks, baseline_peaks):
    cur = tmp_path / "current.json"
    base = tmp_path / "baseline.json"
    cur.write_text(json.dumps(_summary(current_peaks)))
    base.write_text(json.dumps(_summary(baseline_peaks)))
    return cur, base


@pytest.fixture
def results_dir(tmp_path, monkeypatch):
    """Point the guard's side-channel gate files at a tmp dir with
    passing values; individual tests overwrite to probe the gates."""
    rd = tmp_path / "results"
    rd.mkdir()
    (rd / "obs_overhead.json").write_text(json.dumps({"off_overhead": 0.0}))
    (rd / "pr8_batching.json").write_text(json.dumps({"aa_ec_speedup": 2.0}))
    (rd / "pr10_resharding.json").write_text(json.dumps({
        "ms_sc": {"before_qps": 100.0, "after_qps": 100.0,
                  "pause_ratio": 0.1, "keys_moved": 50},
    }))
    monkeypatch.setattr(bench_guard, "RESULTS_DIR", rd)
    return rd


ALL_FIGS = {fig: 100.0 for fig in bench_guard.THROUGHPUT_FIGURES}


# ---------------------------------------------------------------------------
# missing inputs fail cleanly
# ---------------------------------------------------------------------------
def test_missing_baseline_fails_without_traceback(tmp_path, results_dir,
                                                  capsys):
    cur = tmp_path / "current.json"
    cur.write_text(json.dumps(_summary(ALL_FIGS)))
    rc = bench_guard.check(cur, tmp_path / "nope.json")
    assert rc == 1
    out = capsys.readouterr().out
    assert "missing summary" in out and "nope.json" in out
    assert "bench guard: FAIL" in out


def test_missing_current_fails_without_traceback(tmp_path, results_dir,
                                                 capsys):
    base = tmp_path / "baseline.json"
    base.write_text(json.dumps(_summary(ALL_FIGS)))
    rc = bench_guard.check(tmp_path / "gone.json", base)
    assert rc == 1
    assert "gone.json" in capsys.readouterr().out


def test_missing_gate_file_is_a_failure(tmp_path, results_dir, capsys):
    (results_dir / "obs_overhead.json").unlink()
    cur, base = _write_pair(tmp_path, ALL_FIGS, ALL_FIGS)
    rc = bench_guard.check(cur, base)
    assert rc == 1
    assert "obs_overhead.json" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# renamed / dropped figure keys
# ---------------------------------------------------------------------------
def test_renamed_figure_key_reads_as_missing(tmp_path, results_dir, capsys):
    renamed = dict(ALL_FIGS)
    renamed["fig6_batched"] = renamed.pop("fig6")
    cur, base = _write_pair(tmp_path, renamed, ALL_FIGS)
    rc = bench_guard.check(cur, base)
    assert rc == 1
    out = capsys.readouterr().out
    assert "fig6: missing from current" in out


def test_figure_dropped_from_baseline_also_flagged(tmp_path, results_dir,
                                                   capsys):
    shrunk = dict(ALL_FIGS)
    del shrunk["ablation_mapping"]
    cur, base = _write_pair(tmp_path, ALL_FIGS, shrunk)
    rc = bench_guard.check(cur, base)
    assert rc == 1
    assert "ablation_mapping: missing from baseline" in (
        capsys.readouterr().out)


# ---------------------------------------------------------------------------
# threshold boundaries cut exactly where documented
# ---------------------------------------------------------------------------
def test_exact_ten_percent_regression_passes(tmp_path, results_dir):
    # "more than 10%" fails, so exactly 0.90x is still legal
    degraded = {fig: 90.0 for fig in bench_guard.THROUGHPUT_FIGURES}
    cur, base = _write_pair(tmp_path, degraded, ALL_FIGS)
    assert bench_guard.check(cur, base) == 0


def test_just_past_ten_percent_fails(tmp_path, results_dir, capsys):
    degraded = dict(ALL_FIGS)
    degraded["fig7"] = 89.9
    cur, base = _write_pair(tmp_path, degraded, ALL_FIGS)
    rc = bench_guard.check(cur, base)
    assert rc == 1
    assert "fig7" in capsys.readouterr().out


def test_obs_off_gate_boundary(tmp_path, results_dir):
    cur, base = _write_pair(tmp_path, ALL_FIGS, ALL_FIGS)
    (results_dir / "obs_overhead.json").write_text(
        json.dumps({"off_overhead": 0.02}))
    assert bench_guard.check(cur, base) == 0  # gate is <=
    (results_dir / "obs_overhead.json").write_text(
        json.dumps({"off_overhead": 0.021}))
    assert bench_guard.check(cur, base) == 1


def test_headline_speedup_boundary(tmp_path, results_dir):
    cur, base = _write_pair(tmp_path, ALL_FIGS, ALL_FIGS)
    (results_dir / "pr8_batching.json").write_text(
        json.dumps({"aa_ec_speedup": 1.5}))
    assert bench_guard.check(cur, base) == 0  # gate is >=
    (results_dir / "pr8_batching.json").write_text(
        json.dumps({"aa_ec_speedup": 1.49}))
    assert bench_guard.check(cur, base) == 1


def test_reshard_pause_gate_boundary(tmp_path, results_dir):
    cur, base = _write_pair(tmp_path, ALL_FIGS, ALL_FIGS)

    def write(pause, after=100.0, moved=50):
        (results_dir / "pr10_resharding.json").write_text(json.dumps({
            "ms_sc": {"before_qps": 100.0, "after_qps": after,
                      "pause_ratio": pause, "keys_moved": moved},
        }))

    write(bench_guard.RESHARD_PAUSE_GATE)
    assert bench_guard.check(cur, base) == 0  # gate is <=
    write(bench_guard.RESHARD_PAUSE_GATE + 0.01)
    assert bench_guard.check(cur, base) == 1
    write(0.1, after=bench_guard.RESHARD_RECOVERY_GATE * 100.0)
    assert bench_guard.check(cur, base) == 0  # recovery gate is >=
    write(0.1, after=bench_guard.RESHARD_RECOVERY_GATE * 100.0 - 1.0)
    assert bench_guard.check(cur, base) == 1
    write(0.1, moved=0)  # a no-op "reshard" is a failure too
    assert bench_guard.check(cur, base) == 1


def test_missing_reshard_results_is_a_failure(tmp_path, results_dir, capsys):
    (results_dir / "pr10_resharding.json").unlink()
    cur, base = _write_pair(tmp_path, ALL_FIGS, ALL_FIGS)
    rc = bench_guard.check(cur, base)
    assert rc == 1
    assert "pr10_resharding.json" in capsys.readouterr().out


def test_improvements_pass(tmp_path, results_dir):
    improved = {fig: 150.0 for fig in bench_guard.THROUGHPUT_FIGURES}
    cur, base = _write_pair(tmp_path, improved, ALL_FIGS)
    assert bench_guard.check(cur, base) == 0


# ---------------------------------------------------------------------------
# CLI entry
# ---------------------------------------------------------------------------
def test_main_uses_positional_paths(tmp_path, results_dir, capsys):
    cur, base = _write_pair(tmp_path, ALL_FIGS, ALL_FIGS)
    rc = bench_guard.main(["bench_guard.py", str(cur), str(base)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "current.json vs baseline.json" in out
    assert "bench guard: PASS" in out
