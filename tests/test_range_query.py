"""Tests for the §IV-B controlet-side range-query service."""

import pytest

from repro.core.range_query import RangeQueryControlet
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec


def build(shards=3):
    dep = Deployment(
        DeploymentSpec(
            shards=shards, replicas=3,
            topology=Topology.MS, consistency=Consistency.EVENTUAL,
            datalet_kinds=("mt",), partitioner="range",
            controlet_class=RangeQueryControlet,
        )
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    port = dep.cluster.add_port("raw")
    return dep, client, port


def load(dep, client):
    keys = [f"{c}{i:02d}" for c in "adhkpt" for i in range(8)]
    futs = [client.put(k, k.upper()) for k in keys]
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 1.5)  # map refresh + EC settle
    return keys


def ask(dep, port, controlet, payload):
    return dep.sim.run_future(port.request(controlet, "get_range", payload, timeout=5.0))


def test_cross_shard_range_through_any_controlet():
    dep, client, port = build()
    keys = load(dep, client)
    entry = dep.shard(1).ordered()[1].controlet  # arbitrary non-head
    resp = ask(dep, port, entry, {"start": "d00", "end": "p04"})
    assert resp.type == "range"
    expect = sorted((k, k.upper()) for k in keys if "d00" <= k < "p04")
    assert [tuple(i) for i in resp.payload["items"]] == expect
    # the range spanned multiple shards
    assert len({client.shard_for(k).shard_id for k, _ in expect}) > 1


def test_limit_applied_after_merge():
    dep, client, port = build()
    load(dep, client)
    entry = dep.shard(0).head.controlet
    resp = ask(dep, port, entry, {"start": "a00", "end": "z99", "limit": 7})
    items = resp.payload["items"]
    assert len(items) == 7
    assert [k for k, _ in items] == sorted(k for k, _ in items)


def test_empty_range():
    dep, client, port = build()
    load(dep, client)
    entry = dep.shard(0).head.controlet
    resp = ask(dep, port, entry, {"start": "z", "end": "a"})
    assert resp.type == "range" and resp.payload["items"] == []


def test_counts_range_queries():
    dep, client, port = build()
    load(dep, client)
    entry = dep.shard(0).head.controlet
    ask(dep, port, entry, {"start": "a", "end": "e"})
    ask(dep, port, entry, {"start": "a", "end": "e"})
    assert dep.cluster.actor(entry).range_queries == 2


def test_map_not_ready_yields_clean_error():
    dep = Deployment(
        DeploymentSpec(shards=1, replicas=1, topology=Topology.MS,
                       consistency=Consistency.EVENTUAL,
                       datalet_kinds=("mt",), controlet_class=RangeQueryControlet)
    )
    # deliberately do NOT start the cluster-wide actors beyond placement:
    # ask before the map-refresh round trip completes
    dep.start()
    port = dep.cluster.add_port("raw")
    fut = port.request(dep.shard(0).head.controlet, "get_range",
                       {"start": "a", "end": "z"}, timeout=5.0)
    resp = dep.sim.run_future(fut)
    # either the map arrived in time (range) or the error is clean
    assert resp.type in ("range", "error")


def test_failover_mid_scan_then_recovers():
    """Kill a sub-scan target mid-query: the in-flight range query fails
    cleanly (no hang), and after failover + map refresh the same range
    succeeds with the full result set from the replacement tail."""
    dep = Deployment(
        DeploymentSpec(
            shards=3, replicas=3, standbys=2,
            topology=Topology.MS, consistency=Consistency.EVENTUAL,
            datalet_kinds=("mt",), partitioner="range",
            controlet_class=RangeQueryControlet,
        )
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    port = dep.cluster.add_port("raw")
    keys = load(dep, client)

    # the whole-keyspace range fans out to every shard's tail; kill one
    # tail while the query is in flight
    entry = dep.shard(0).head.controlet
    fut = port.request(entry, "get_range", {"start": "a00", "end": "z99"},
                       timeout=30.0)
    dep.sim.run_until(dep.sim.now + 0.001)  # let sub-scans get issued
    dep.kill_replica(1, chain_pos=len(dep.shard(1).replicas) - 1)  # tail
    resp = dep.sim.run_future(fut)
    # the dead sub-scan surfaces as a clean error or (if the scan beat
    # the kill on the wire) the complete result — never a hang
    assert resp.type in ("range", "error")

    # after failover the refreshed map routes to the replacement tail
    dep.sim.run_until(dep.sim.now + 12.0)
    resp = ask(dep, port, entry, {"start": "a00", "end": "z99"})
    assert resp.type == "range"
    assert [k for k, _ in resp.payload["items"]] == sorted(keys)


def test_plain_kv_ops_still_work_with_subclass():
    dep, client, port = build(shards=2)
    dep.sim.run_future(client.put("hello", "world"))
    dep.sim.run_until(dep.sim.now + 1.0)
    assert dep.sim.run_future(client.get("hello")) == "world"
