"""Batching correctness tier (PR 8).

The hot-path batching layer — sequencer group commit (AA+EC),
coalesced chain frames (MS+SC), per-peer replicate frames (MS+EC),
WAL commit groups, client pipelining — must be invisible to every
correctness contract.  This tier pins:

* per-key FIFO and cross-replica agreement under pipelined concurrent
  load, for all four combos;
* exactly-once request-id dedup when retries ride batched frames,
  including the AA+EC cross-active retry that only the sequencer can
  deduplicate;
* the seeded ``partial-batch-ack`` defect (a batch member acked before
  its frame commits) is caught by BOTH the dynamic chaos oracle and
  the static commit-point analyzer;
* the model checker actually interleaves on batch-frame boundaries
  (``chain_put_batch`` / ``log_append_batch`` deliveries are explored
  choice points) and the healthy batched build stays clean;
* the PR 7 apply-batch-inversion class (catch-up batch overtaken by
  fresh traffic in parallel CPU slots) stays covered with aggressive
  batch knobs.
"""

import os

import pytest

from repro.analysis.commitpoints import analyze_sources
from repro.analysis.explore import explore, replay_trace
from repro.analysis.statespace import (
    INJECTIONS,
    CheckerRun,
    CheckScenario,
    PartialBatchAckMSStrongControlet,
)
from repro.analysis.summaries import build_summaries
from repro.chaos.runner import run_combo, run_soak
from repro.client import PipelinedClient
from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.obs import RequestContext

COMBOS = [
    ("ms-sc", Topology.MS, Consistency.STRONG),
    ("ms-ec", Topology.MS, Consistency.EVENTUAL),
    ("aa-sc", Topology.AA, Consistency.STRONG),
    ("aa-ec", Topology.AA, Consistency.EVENTUAL),
]


def deploy(topology, consistency, seed=5, **kw):
    dep = Deployment(
        DeploymentSpec(shards=1, replicas=3, topology=topology,
                       consistency=consistency, seed=seed, **kw)
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


def _settle(dep, seconds=3.0):
    dep.sim.run_until(dep.sim.now + seconds)


# ---------------------------------------------------------------------------
# per-key FIFO + convergence under pipelined load
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name,topology,consistency", COMBOS)
def test_pipelined_writes_keep_per_key_fifo(name, topology, consistency):
    """Each key's versions are written in order (awaited per key) while
    many keys are in flight concurrently through coalesced frames; every
    key must read back its last acked version on every replica."""
    dep, client = deploy(topology, consistency)
    pipe = PipelinedClient(client, window=8, window_max=16)

    def key_proc(k, n):
        for j in range(n):
            yield pipe.put(f"key{k}", f"v{j}")

    futs = [dep.sim.spawn(key_proc(k, 6)) for k in range(8)]
    dep.sim.run_future(dep.sim.gather(futs), timeout=240.0)
    pipe.stop()
    _settle(dep)
    for k in range(8):
        value = dep.sim.run_future(client.get(f"key{k}"))
        assert value == "v5", f"{name}: key{k} lost its last write: {value}"
    # replica agreement: the frames did not reorder across the fan-out
    engines = [dep.cluster.actor(f"d0.{i}").engine for i in range(3)]
    for k in range(8):
        values = {e.get(f"key{k}") for e in engines}
        assert values == {"v5"}, f"{name}: replicas diverged on key{k}: {values}"


@pytest.mark.parametrize("name,topology,consistency", COMBOS)
def test_concurrent_same_key_writes_agree(name, topology, consistency):
    """Racing writes to one key may win in any order, but after the
    batched fan-out settles every replica must agree on a single winner
    from the acked set."""
    dep, client = deploy(topology, consistency, seed=9)
    pipe = PipelinedClient(client, window=12, window_max=16)
    futs = [pipe.put("hot", f"v{i}") for i in range(12)]
    dep.sim.run_future(dep.sim.gather(futs), timeout=240.0)
    pipe.stop()
    _settle(dep)
    engines = [dep.cluster.actor(f"d0.{i}").engine for i in range(3)]
    values = {e.get("hot") for e in engines}
    assert len(values) == 1, f"{name}: replicas diverged: {values}"
    winner = values.pop()
    assert winner in {f"v{i}" for i in range(12)}


# ---------------------------------------------------------------------------
# exactly-once rid dedup through batched frames
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name,topology,consistency", COMBOS)
def test_rid_retry_is_exactly_once(name, topology, consistency):
    """A retried delete (same request id) must be answered from the
    dedup path, not re-executed — re-execution would return not_found.
    The batched write path must record rids only at real commit."""
    dep, client = deploy(topology, consistency)
    port = dep.cluster.add_port("tester")
    writer = "c0.0"  # MS head / any AA active
    resp = dep.sim.run_future(port.request(
        writer, "put", {"key": "k", "val": "v"},
        ctx=RequestContext(origin="tester", req_id="tester.1"), timeout=10.0))
    assert resp.type == "ok"
    resp = dep.sim.run_future(port.request(
        writer, "del", {"key": "k"},
        ctx=RequestContext(origin="tester", req_id="tester.2"), timeout=10.0))
    assert resp.type == "ok"
    # the "retry": same rid again, after the original committed
    resp = dep.sim.run_future(port.request(
        writer, "del", {"key": "k"},
        ctx=RequestContext(origin="tester", req_id="tester.2"), timeout=10.0))
    assert resp.type == "ok", f"{name}: retry re-executed: {resp.payload}"
    assert dep.cluster.actor(writer).stats["dup_writes"] >= 1


def test_aa_ec_cross_active_retry_dedups_at_sequencer():
    """A retry routed to a *different* active is invisible to any
    per-controlet cache; only the sequencer (inside a group-commit
    batch) can suppress it."""
    dep, client = deploy(Topology.AA, Consistency.EVENTUAL)
    port = dep.cluster.add_port("tester")
    resp = dep.sim.run_future(port.request(
        "c0.0", "put", {"key": "k", "val": "v"},
        ctx=RequestContext(origin="tester", req_id="tester.9"), timeout=10.0))
    assert resp.type == "ok"
    resp = dep.sim.run_future(port.request(
        "c0.0", "del", {"key": "k"},
        ctx=RequestContext(origin="tester", req_id="tester.10"), timeout=10.0))
    assert resp.type == "ok"
    # retry lands on another active: served via sequencer dup, no re-apply
    resp = dep.sim.run_future(port.request(
        "c0.1", "del", {"key": "k"},
        ctx=RequestContext(origin="tester", req_id="tester.10"), timeout=10.0))
    assert resp.type == "ok", f"cross-active retry re-executed: {resp.payload}"
    assert dep.cluster.actor("sharedlog.s0").dup_appends >= 1


# ---------------------------------------------------------------------------
# must-fail: the partial-batch-ack defect
# ---------------------------------------------------------------------------
def test_partial_batch_ack_caught_by_chaos_oracle():
    """Acking a batch member before its frame commits must surface as a
    linearizability violation under chaos (the ack outruns the chain
    suffix; a failover exposes the stale tail)."""
    res = run_combo(
        Topology.MS, Consistency.STRONG, seed=3, duration=10.0,
        spec_overrides={"controlet_class": PartialBatchAckMSStrongControlet},
    )
    assert not res.ok
    assert "no valid linearization" in res.describe()


def test_partial_batch_ack_found_by_model_checker_with_replay():
    result = explore(
        CheckScenario(combo="ms-sc", ops_per_client=2, crashes=0,
                      inject="partial-batch-ack"),
        summaries=build_summaries(),
    )
    assert not result.ok
    ce = result.counterexample
    assert ce.kind == "consistency"
    replay = replay_trace(ce)
    assert replay.reproduced, replay.describe()


def test_partial_batch_ack_flagged_by_commit_point_analyzer():
    import repro

    root = os.path.dirname(repro.__file__)
    rels = ["core/controlet.py", "core/request.py", "core/ms_sc.py",
            "analysis/statespace.py"]
    pairs = []
    for rel in rels:
        with open(os.path.join(root, rel)) as fh:
            pairs.append((rel, fh.read()))
    findings = [f for f in analyze_sources(pairs)
                if not f.suppressed
                and "PartialBatchAckMSStrongControlet" in f.message]
    assert findings, "analyzer missed the partial-batch-ack defect"
    assert any(f.rule == "ack-before-replication" for f in findings)


def test_injection_is_registered():
    assert "partial-batch-ack" in INJECTIONS


# ---------------------------------------------------------------------------
# model-checker coverage of batched paths
# ---------------------------------------------------------------------------
def test_checker_interleaves_on_batch_frame_boundaries():
    """Batch frames are ordinary pending messages to the checker, so
    frame deliveries are explored choice points.  Drive one healthy
    ms-sc run greedily and observe a ``chain_put_batch`` choice."""
    run = CheckerRun(CheckScenario(combo="ms-sc", clients=1, ops_per_client=2,
                                   crashes=0))
    run.boot()
    seen = set()
    for _ in range(300):
        events = run.enabled()
        if not events:
            break
        seen.update(e.describe.split(" ")[1] for e in events
                    if e.kind == "deliver")
        run.execute(events[0])
    assert "chain_put_batch" in seen, f"no batched frame explored: {seen}"
    assert run.invariant_violation() is None


def test_checker_interleaves_on_group_commit_boundaries():
    run = CheckerRun(CheckScenario(combo="aa-ec", clients=1, ops_per_client=2,
                                   crashes=0))
    run.boot()
    seen = set()
    for _ in range(300):
        events = run.enabled()
        if not events:
            break
        seen.update(e.describe.split(" ")[1] for e in events
                    if e.kind == "deliver")
        run.execute(events[0])
    assert "log_append_batch" in seen, f"no group commit explored: {seen}"


def test_healthy_batched_build_explores_clean():
    result = explore(
        CheckScenario(combo="ms-sc", ops_per_client=2, crashes=0),
        summaries=build_summaries(),
    )
    assert result.ok, result.describe()


# ---------------------------------------------------------------------------
# PR 7 apply-batch-inversion class under batch frames
# ---------------------------------------------------------------------------
def test_apply_batch_inversion_stays_covered_under_batch_frames():
    """Rolling restarts of both EC combos with aggressive batch knobs:
    a recovering node's catch-up batches must not be overtaken by fresh
    frames through the parallel CPU slots (the PR 7 inversion class);
    divergence would fail the soak's replica-agreement check."""
    report = run_soak(
        [3], duration=8.0, rolling_restart=True,
        combos=[(Topology.MS, Consistency.EVENTUAL),
                (Topology.AA, Consistency.EVENTUAL)],
        spec_overrides={"control": ControlConfig(
            group_commit_max=64, chain_batch_max=64, replicate_batch_max=512)},
    )
    assert report.ok, report.describe()
    for res in report.results:
        assert res.stats["recoveries"] > 0


# ---------------------------------------------------------------------------
# batch size knobs are honored
# ---------------------------------------------------------------------------
def test_batch_size_one_disables_coalescing():
    """`--batch 1` (ControlConfig caps at 1) degenerates to the
    unbatched protocol: every frame carries exactly one entry."""
    dep, client = deploy(
        Topology.MS, Consistency.STRONG,
        control=ControlConfig(group_commit_max=1, chain_batch_max=1,
                              replicate_batch_max=1),
    )
    pipe = PipelinedClient(client, window=8, window_max=8)
    futs = [pipe.put(f"k{i}", "v") for i in range(20)]
    dep.sim.run_future(dep.sim.gather(futs), timeout=120.0)
    pipe.stop()
    head = dep.cluster.actor("c0.0")
    assert head.chain_frames == head.chain_frame_ops  # 1 op per frame
    assert head.chain_frames >= 20

# ---------------------------------------------------------------------------
# AIMD window reacts to RPC timeouts (which never reach the histograms)
# ---------------------------------------------------------------------------
def test_rpc_timeouts_shrink_pipeline_window():
    """The KVClient swallows RequestTimeout into retries, so timed-out
    ops never land in the latency histograms — the controller must
    watch the timeout counter delta or it holds the window wide (and
    keeps growing it on stale healthy p99) through congestion."""
    dep, client = deploy(Topology.MS, Consistency.EVENTUAL)
    # target_p99 far above sim latencies: the p99 arm alone always grows
    pipe = PipelinedClient(client, window=16, window_max=32,
                           target_p99=10.0, adaptive=False)
    futs = [pipe.put(f"k{i}", "v") for i in range(4)]
    dep.sim.run_future(dep.sim.gather(futs), timeout=60.0)

    # healthy tick: p99 under target, no timeouts -> additive increase
    pipe._tune()
    assert pipe.window == 17 and pipe.grows == 1

    # timeouts since the last tick: halve even though p99 looks fine
    client.timeouts += 2
    pipe._tune()
    assert pipe.window == 8
    assert pipe.timeout_shrinks == 1 and pipe.shrinks == 1

    # the signal is a delta, not a level: no new timeouts, no shrink
    pipe._tune()
    assert pipe.timeout_shrinks == 1
    assert pipe.window == 9  # healthy p99 resumes additive increase

    # sustained timeouts walk the window down to the floor and stop
    for _ in range(6):
        client.timeouts += 1
        pipe._tune()
    assert pipe.window == pipe.window_min
    assert pipe.timeout_shrinks == 4  # 9 -> 4 -> 2 -> 1, then floored
    pipe.stop()
