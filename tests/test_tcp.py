"""End-to-end TCP tests: real sockets on localhost, both protocols."""

import threading

import pytest

from repro.datalet import BTreeEngine, HashTableEngine
from repro.errors import BespoError, KeyNotFound
from repro.net.tcp import DataletServer, TcpKVClient


@pytest.fixture(params=["resp", "binary"])
def server_client(request):
    engine = BTreeEngine()
    with DataletServer(engine, protocol=request.param) as server:
        host, port = server.address
        with TcpKVClient(host, port, protocol=request.param) as client:
            yield engine, client


def test_put_get_over_tcp(server_client):
    _, client = server_client
    client.put("k", "v")
    assert client.get("k") == "v"


def test_get_missing_over_tcp(server_client):
    _, client = server_client
    with pytest.raises(KeyNotFound):
        client.get("nope")


def test_delete_over_tcp(server_client):
    _, client = server_client
    client.put("k", "v")
    client.delete("k")
    with pytest.raises(KeyNotFound):
        client.get("k")
    with pytest.raises(KeyNotFound):
        client.delete("k")


def test_scan_over_tcp(server_client):
    _, client = server_client
    for i in range(20):
        client.put(f"k{i:02d}", str(i))
    items = client.scan("k05", "k10")
    assert items == [(f"k{i:02d}", str(i)) for i in range(5, 10)]
    assert len(client.scan("k00", "k99", limit=3)) == 3


def test_ping_and_size(server_client):
    _, client = server_client
    assert client.ping()
    client.put("a", "1")
    client.put("b", "2")
    assert client.size() == 2


def test_values_with_unicode_and_binaryish_content(server_client):
    _, client = server_client
    client.put("key", "päyload ✓ with spaces\tand tabs")
    assert client.get("key") == "päyload ✓ with spaces\tand tabs"


def test_large_value_roundtrip(server_client):
    _, client = server_client
    big = "x" * 500_000
    client.put("big", big)
    assert client.get("big") == big


def test_concurrent_clients():
    engine = HashTableEngine()
    with DataletServer(engine, protocol="resp") as server:
        host, port = server.address
        errors = []

        def worker(wid):
            try:
                with TcpKVClient(host, port) as c:
                    for i in range(50):
                        c.put(f"w{wid}.k{i}", str(i))
                        assert c.get(f"w{wid}.k{i}") == str(i)
            except Exception as e:  # noqa: BLE001
                errors.append(e)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(engine) == 400


def test_scan_rejected_on_hash_engine():
    with DataletServer(HashTableEngine(), protocol="resp") as server:
        host, port = server.address
        with TcpKVClient(host, port) as client:
            with pytest.raises(BespoError):
                client.scan("a", "z")


def test_unknown_command_resp():
    with DataletServer(HashTableEngine(), protocol="resp") as server:
        host, port = server.address
        with TcpKVClient(host, port) as client:
            with pytest.raises(BespoError):
                client._resp_call("FLUSHALL")


def test_invalid_protocol_rejected():
    with pytest.raises(BespoError):
        DataletServer(HashTableEngine(), protocol="grpc")
    with DataletServer(HashTableEngine()) as server:
        host, port = server.address
        with pytest.raises(BespoError):
            TcpKVClient(host, port, protocol="grpc")
