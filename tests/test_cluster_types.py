"""Tests for cluster metadata types."""

import pytest

from repro.core.types import ClusterMap, Consistency, Replica, ShardInfo, Topology
from repro.errors import ConfigError


def shard3(topology=Topology.MS, consistency=Consistency.STRONG):
    return ShardInfo(
        shard_id="s0",
        topology=topology,
        consistency=consistency,
        replicas=[
            Replica("c1", "d1", "h1", chain_pos=0),
            Replica("c2", "d2", "h2", chain_pos=1),
            Replica("c3", "d3", "h3", chain_pos=2),
        ],
    )


def test_head_tail_and_order():
    s = shard3()
    assert s.head.controlet == "c1"
    assert s.tail.controlet == "c3"
    assert s.controlets() == ["c1", "c2", "c3"]


def test_successor_chain():
    s = shard3()
    assert s.successor("c1").controlet == "c2"
    assert s.successor("c2").controlet == "c3"
    assert s.successor("c3") is None
    with pytest.raises(ConfigError):
        s.successor("nope")


def test_replica_of_and_remove():
    s = shard3()
    r = s.replica_of("c2")
    assert r.datalet == "d2"
    s.remove_replica("c2")
    assert s.controlets() == ["c1", "c3"]
    with pytest.raises(ConfigError):
        s.replica_of("c2")


def test_string_coercion_of_enums():
    s = ShardInfo("s0", "aa", "eventual", [Replica("c", "d", "h")])
    assert s.topology is Topology.AA
    assert s.consistency is Consistency.EVENTUAL


def test_empty_shard_head_raises():
    s = ShardInfo("s0", Topology.MS, Consistency.STRONG, [])
    with pytest.raises(ConfigError):
        _ = s.head
    with pytest.raises(ConfigError):
        _ = s.tail


def test_shard_roundtrip_dict():
    s = shard3(Topology.AA, Consistency.EVENTUAL)
    s2 = ShardInfo.from_dict(s.to_dict())
    assert s2.to_dict() == s.to_dict()
    assert s2.head.controlet == "c1"


def test_cluster_map_roundtrip_and_epoch():
    cm = ClusterMap()
    cm.shards["s0"] = shard3()
    cm.bump()
    cm.bump()
    d = cm.to_dict()
    cm2 = ClusterMap.from_dict(d)
    assert cm2.epoch == 2
    assert cm2.shard("s0").tail.controlet == "c3"
    assert cm2.shard_ids() == ["s0"]


def test_cluster_map_unknown_shard():
    with pytest.raises(ConfigError):
        ClusterMap().shard("nope")
