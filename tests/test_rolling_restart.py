"""Rolling-restart chaos: deterministic power-cycle of every data host.

Unlike the random schedule (which only occasionally draws a
crash+restart pair), the rolling schedule guarantees every host goes
through the WAL-replay + stale-rejoin path once, strictly one at a
time — the ops upgrade that keeps finding real bugs: it exposed the
ms-sc rejoin livelock and the multi-slot CPU apply-batch inversion in
both EC combos (a recovering node's big catch-up batch overtaken by
the fresh tail).  The all-combo soak below is the standing regression
for both.
"""

import pytest

from repro.chaos import run_combo, run_soak
from repro.chaos.runner import ALL_COMBOS
from repro.chaos.schedule import FaultSchedule, rolling_restart_schedule
from repro.core.types import Consistency, Topology
from repro.errors import ConfigError

HOSTS = ["h2", "h0", "h1"]


# ---------------------------------------------------------------------------
# the schedule helper
# ---------------------------------------------------------------------------
def test_rolling_schedule_shape():
    sched = rolling_restart_schedule(HOSTS, start=1.0, downtime=0.5, stagger=2.0)
    assert isinstance(sched, FaultSchedule)
    assert len(sched.events) == 2 * len(HOSTS)
    # hosts are cycled in sorted order, one crash+recover pair each
    pairs = list(zip(sched.events[0::2], sched.events[1::2]))
    assert [c.target for c, _ in pairs] == sorted(HOSTS)
    for i, (crash, restart) in enumerate(pairs):
        assert crash.kind == "crash" and not crash.recover
        assert restart.kind == "restart" and restart.recover
        assert restart.target == crash.target
        assert crash.at == pytest.approx(1.0 + i * 2.0)
        assert restart.at == pytest.approx(crash.at + 0.5)
    sched.validate()


def test_rolling_schedule_is_one_host_down_at_a_time():
    sched = rolling_restart_schedule(HOSTS, downtime=0.5, stagger=2.0)
    down = []
    for ev in sorted(sched.events, key=lambda e: e.at):
        if ev.kind == "crash":
            assert not down, f"{ev.target} crashed while {down} still down"
            down.append(ev.target)
        else:
            down.remove(ev.target)
    assert down == []


def test_rolling_schedule_is_deterministic():
    a = rolling_restart_schedule(HOSTS)
    b = rolling_restart_schedule(list(reversed(HOSTS)))
    assert a.digest() == b.digest()


def test_rolling_schedule_rejects_bad_config():
    with pytest.raises(ConfigError):
        rolling_restart_schedule([])
    with pytest.raises(ConfigError):
        rolling_restart_schedule(HOSTS, downtime=0.0)
    with pytest.raises(ConfigError):
        rolling_restart_schedule(HOSTS, downtime=1.0, stagger=1.0)


# ---------------------------------------------------------------------------
# the soak
# ---------------------------------------------------------------------------
def test_rolling_restart_all_combos():
    """Every combo survives a full power-cycle of its data hosts.

    This is the regression test for the apply-batch inversion: before
    the EC controlets serialized replay batches to their datalet, the
    recovering node's backlog batch raced the fresh tail through the
    host's parallel CPU slots and a replica diverged permanently."""
    report = run_soak([1], duration=8.0, rolling_restart=True)
    assert len(report.results) == len(ALL_COMBOS)
    assert report.ok, report.describe()
    for res in report.results:
        # every data host actually went down and came back
        assert res.stats["recoveries"] > 0, res.describe()
        assert res.stats["acked"] > 0


def test_rolling_restart_same_seed_is_deterministic():
    a = run_combo(Topology.AA, Consistency.EVENTUAL, seed=2,
                  duration=8.0, rolling_restart=True)
    b = run_combo(Topology.AA, Consistency.EVENTUAL, seed=2,
                  duration=8.0, rolling_restart=True)
    assert a.digest == b.digest
    assert a.schedule.digest() == b.schedule.digest()


def test_cli_rolling_restart(capsys):
    from repro.cli import main

    rc = main(["chaos", "--seed", "1", "--duration", "6",
               "--combo", "ms-sc", "--rolling-restart"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "soak: PASS" in out
    assert "durable recovery:" in out
