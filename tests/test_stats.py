"""Tests for the observability helpers."""

from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.harness.stats import collect_stats, utilization_report


def build():
    dep = Deployment(DeploymentSpec(shards=2, replicas=3, topology=Topology.MS,
                                    consistency=Consistency.EVENTUAL))
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


def test_collect_stats_counts_ops():
    dep, client = build()
    for i in range(20):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 1.0)
    for i in range(20):
        dep.sim.run_future(client.get(f"k{i}"))
    stats = collect_stats(dep)
    assert set(stats) == {"s0", "s1"}
    total_puts = sum(
        s.get("puts", 0)
        for shard in stats.values()
        for cid, s in shard.items()
        if cid.startswith("c")
    )
    assert total_puts == 20
    # datalet live_keys across masters equals total inserted
    masters = [dep.map.shard(sid).head for sid in dep.map.shard_ids()]
    live = sum(stats[sid][m.datalet]["live_keys"]
               for sid, m in zip(dep.map.shard_ids(), masters))
    assert live == 20


def test_collect_stats_includes_engine_internals():
    dep, client = build()
    dep.sim.run_future(client.put("k", "v"))
    stats = collect_stats(dep)
    shard = stats[client.shard_for("k").shard_id]
    datalet_stats = shard[client.shard_for("k").head.datalet]
    assert "live_keys" in datalet_stats
    assert "ops_put" in datalet_stats


def test_utilization_report_reflects_load():
    dep, client = build()
    futs = [client.put(f"k{i}", "v" * 16) for i in range(200)]
    dep.sim.run_future(dep.sim.gather(futs))
    report = utilization_report(dep)
    # masters did real work; client hosts are excluded (free)
    heads = {dep.map.shard(sid).head.host for sid in dep.map.shard_ids()}
    assert all(report[h] > 0.0 for h in heads)
    assert all(0.0 <= u <= 1.0 + 1e-9 for u in report.values())
    assert not any(name.startswith("c0") and name == "c0" for name in report)
