"""Tests for the small-scope model checker (statespace + explore)."""

import json

import pytest

from repro.analysis.explore import (
    CounterTrace,
    ExploreResult,
    explore,
    replay_trace,
)
from repro.analysis.statespace import INJECTIONS, CheckerRun, CheckScenario
from repro.analysis.summaries import build_summaries


@pytest.fixture(scope="module")
def summaries():
    return build_summaries()


# ---------------------------------------------------------------------------
# scenario plumbing
# ---------------------------------------------------------------------------
def test_scenario_round_trips_through_dict():
    s = CheckScenario(combo="aa-ec", nodes=3, clients=2, ops_per_client=4,
                      crashes=2, seed=7, advance_budget=11,
                      eager_network=False, inject="early-ack")
    assert CheckScenario.from_dict(s.to_dict()) == s
    assert "aa-ec" in s.label() and "crashes=2" in s.label()


def test_scenario_ops_alternate_on_one_shared_key():
    s = CheckScenario(ops_per_client=4)
    ops = s.ops_for(0)
    assert [o[0] for o in ops] == ["put", "get", "put", "get"]
    assert {o[1] for o in ops} == {"x"}


def test_unknown_injection_rejected():
    from repro.errors import BespoError

    assert "early-ack" in INJECTIONS
    with pytest.raises(BespoError):
        CheckerRun(CheckScenario(inject="nope")).boot()


# ---------------------------------------------------------------------------
# controlled execution
# ---------------------------------------------------------------------------
def test_boot_is_deterministic():
    a = CheckerRun(CheckScenario())
    a.boot()
    b = CheckerRun(CheckScenario())
    b.boot()
    assert a.fingerprint() == b.fingerprint()
    assert [e.key for e in a.enabled()] == [e.key for e in b.enabled()]


def test_apply_choice_replays_identically():
    def drive(choices):
        run = CheckerRun(CheckScenario())
        run.boot()
        taken = []
        for c in choices:
            taken.append(run.apply_choice(c).key)
        return taken, run.fingerprint()

    a_keys, a_fp = drive([0, 0, 0])
    b_keys, b_fp = drive([0, 0, 0])
    assert a_keys == b_keys and a_fp == b_fp
    # a different schedule prefix lands in a different state
    if len(CheckerRun(CheckScenario()).enabled()) > 1:
        _, c_fp = drive([1, 0, 0])
        assert c_fp != a_fp


# ---------------------------------------------------------------------------
# exploration verdicts
# ---------------------------------------------------------------------------
def test_healthy_ms_sc_closes_at_fixpoint(summaries):
    result = explore(CheckScenario(combo="ms-sc", crashes=1),
                     summaries=summaries)
    assert result.ok and result.fixpoint
    assert result.states > 0 and result.oracle_checks > 0
    assert result.passes == 2  # delay-bounded pass + full pass
    assert "PASS" in result.describe()


def test_healthy_ms_ec_closes_at_fixpoint(summaries):
    result = explore(CheckScenario(combo="ms-ec", crashes=1),
                     summaries=summaries)
    assert result.ok and result.fixpoint


@pytest.mark.parametrize("combo", ["ms-sc", "aa-sc"])
def test_strong_combos_explore_view_transitions(combo, summaries):
    """Acceptance: the checker explores bounded view-transition
    interleavings (crash -> failure detection -> failover commit) for
    each STRONG combo without finding a counterexample, and the
    coordinator's transition log records the epochs it moved through."""
    result = explore(CheckScenario(combo=combo, crashes=1),
                     summaries=summaries)
    assert result.ok, result.describe()
    assert result.states > 0

    # drive one such interleaving by hand and inspect the view: crash
    # the chain head / an active peer, then run the schedule forward
    run = CheckerRun(CheckScenario(combo=combo, crashes=1))
    run.boot()
    view = run.dep.coordinator.view
    head_host = run.dep.map.shards["s0"].ordered()[0].host
    events = run.enabled()
    crash_at = next(i for i, e in enumerate(events)
                    if e.kind == "crash" and e.key[1] == head_host)
    run.apply_choice(crash_at)
    for _ in range(800):
        if any(t.kind == "failover" for t in view.log):
            break
        if not run.enabled():
            break
        run.apply_choice(0)
    kinds = [t.kind for t in view.log]
    assert "failover" in kinds, kinds
    assert len({t.epoch for t in view.log}) >= 2
    assert view.reshard is None  # no window opens during a failover
    assert view.snapshot() == view.snapshot()


def test_state_budget_exhaustion_is_reported(summaries):
    result = explore(CheckScenario(combo="ms-sc", crashes=1),
                     max_states=5, summaries=summaries)
    assert result.ok  # no violation found within budget...
    assert not result.fixpoint  # ...but no completeness claim either
    assert result.budget_exhausted == "states"


def test_early_ack_defect_yields_replayable_counterexample(summaries):
    result = explore(
        CheckScenario(combo="ms-sc", ops_per_client=2, crashes=0,
                      inject="early-ack"),
        summaries=summaries,
    )
    assert not result.ok
    ce = result.counterexample
    assert ce.kind == "consistency"
    assert "linearization" in ce.violation
    assert len(ce.decisions) == len(ce.events)
    # the defect is found in the tiny delay-bounded pass
    assert result.states < 50

    # trace JSON round-trip
    doc = json.loads(ce.to_json())
    assert doc["schema"] == "repro.check.trace/1"
    restored = CounterTrace.from_json(ce.to_json())
    assert restored.decisions == ce.decisions
    assert restored.scenario == ce.scenario

    # deterministic replay reproduces the exact violation
    replay = replay_trace(restored)
    assert replay.reproduced, replay.describe()
    assert replay.violation == ce.violation
    assert "REPRODUCED" in replay.describe()


def test_counterexample_scenario_carries_the_finding_pass_scope(summaries):
    """The early-ack bug is found by the delay-bounded pass, so its
    trace must pin that pass's scope (no crashes, no advances) for the
    replay to be faithful."""
    result = explore(
        CheckScenario(combo="ms-sc", ops_per_client=2, crashes=1,
                      inject="early-ack"),
        summaries=summaries,
    )
    ce = result.counterexample
    assert ce is not None
    assert ce.scenario["crashes"] == 0
    assert ce.scenario["advance_budget"] == 0


def test_mutated_trace_does_not_reproduce(summaries):
    result = explore(
        CheckScenario(combo="ms-sc", ops_per_client=2, crashes=0,
                      inject="early-ack"),
        summaries=summaries,
    )
    trace = result.counterexample
    healthy = CounterTrace(
        scenario=dict(trace.scenario, inject=None),
        decisions=trace.decisions,
        events=trace.events,
        kind=trace.kind,
        violation=trace.violation,
    )
    # same schedule against the real build: chain_put is awaited before
    # the ack, so the decision indices diverge into a healthy run
    replay = replay_trace(healthy)
    assert not replay.reproduced


def test_describe_mentions_violation_and_steps(summaries):
    result = explore(
        CheckScenario(combo="ms-sc", ops_per_client=2, crashes=0,
                      inject="early-ack"),
        summaries=summaries,
    )
    text = result.describe()
    assert "FAIL" in text and "VIOLATION" in text
    assert "deliver put" in text


def test_explore_result_merge_counters_accumulate():
    a = ExploreResult(scenario={}, states=3, transitions=5)
    assert a.ok and a.states == 3  # smoke the dataclass surface
