"""Tests for YCSB-D (latest) and YCSB-F (read-modify-write)."""

import pytest

from repro.core.types import Consistency, Topology
from repro.errors import ConfigError
from repro.harness import Deployment, DeploymentSpec
from repro.harness.loadgen import LoadGenerator, preload
from repro.workloads import LatestWorkload, OpMix, Workload, YCSB_D, YCSB_F, make_workload


def test_ycsb_f_mix_ratios():
    wl = make_workload(YCSB_F, keys=500, seed=3)
    for _ in range(4000):
        wl.next_op()
    assert 0.45 < wl.counts["rmw"] / 4000 < 0.55
    assert 0.45 < wl.counts["get"] / 4000 < 0.55


def test_rmw_op_shape():
    wl = make_workload(OpMix(rmw=1.0), keys=10, seed=1)
    op = wl.next_op()
    assert op[0] == "rmw" and len(op) == 3


def test_latest_inserts_grow_keyspace():
    wl = LatestWorkload(keys=1000, preloaded=100, seed=2)
    inserts = [op for op in (wl.next_op() for _ in range(2000)) if op[0] == "put"]
    assert len(inserts) > 50
    # inserted keys are strictly fresh, in order
    indices = [int(op[1][len("user"):]) for op in inserts]
    assert indices == sorted(indices)
    assert indices[0] == 100


def test_latest_reads_skew_to_recent():
    wl = LatestWorkload(keys=10_000, preloaded=5_000, seed=4)
    reads = [op[1] for op in (wl.next_op() for _ in range(3000)) if op[0] == "get"]
    indices = [int(k[len("user"):]) for k in reads]
    # recency is measured against the final insertion point, so reads
    # sampled earlier in the run look slightly "older" than they were
    recent = sum(1 for i in indices if i >= wl.inserted - 100)
    assert recent / len(indices) > 0.3  # heavy recency skew
    assert max(indices) < wl.inserted


def test_latest_preload_matches_preloaded_count():
    wl = LatestWorkload(keys=100, preloaded=30)
    assert len(list(wl.preload_ops())) == 30


def test_latest_validation():
    with pytest.raises(ConfigError):
        LatestWorkload(keys=10, preloaded=0)
    with pytest.raises(ConfigError):
        LatestWorkload(keys=10, preloaded=11)


def test_opmix_rmw_validation():
    with pytest.raises(ConfigError):
        OpMix(get=0.6, rmw=0.6)


def test_loadgen_runs_ycsb_f_end_to_end():
    dep = Deployment(DeploymentSpec(shards=2, replicas=3, topology=Topology.MS,
                                    consistency=Consistency.EVENTUAL))
    dep.start()
    wl0 = make_workload(YCSB_F, keys=300, seed=9)
    preload(dep, {wl0.space.key(i): "v" for i in range(300)})
    lg = LoadGenerator(
        dep, lambda i: make_workload(YCSB_F, keys=300, seed=i),
        clients=3, sessions_per_client=4, warmup=0.2, duration=1.0,
    )
    res = lg.run()
    assert res.errors == 0
    assert res.op_counts["rmw"] > 0


def test_loadgen_runs_ycsb_d_end_to_end():
    dep = Deployment(DeploymentSpec(shards=2, replicas=3, topology=Topology.AA,
                                    consistency=Consistency.EVENTUAL))
    dep.start()
    wl0 = LatestWorkload(keys=2000, preloaded=500, seed=9)
    preload(dep, {op[1]: op[2] for op in wl0.preload_ops()})
    lg = LoadGenerator(
        dep, lambda i: LatestWorkload(keys=2000, preloaded=500, seed=100 + i),
        clients=3, sessions_per_client=4, warmup=0.2, duration=1.0,
    )
    res = lg.run()
    # reads racing fresh inserts may miss (separate sessions insert
    # different keys) — KeyNotFound is tolerated, hard errors are not
    assert res.errors == 0
    assert res.op_counts["put"] > 0 and res.op_counts["get"] > 0
