"""Property-based tests: every engine behaves like a dict (plus ordered
scans for ordered engines), under arbitrary operation sequences."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.datalet import (
    BTreeEngine,
    HashTableEngine,
    LogEngine,
    LSMEngine,
    SSDBEngine,
)
from repro.errors import KeyNotFound

keys = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
vals = st.text(alphabet="xyz0123", max_size=6)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, vals),
        st.tuples(st.just("del"), keys, st.just("")),
        st.tuples(st.just("get"), keys, st.just("")),
    ),
    max_size=120,
)

ENGINE_FACTORIES = [
    ("ht", HashTableEngine),
    ("mt", lambda: BTreeEngine(order=4)),  # tiny order -> exercise splits
    ("lsm", lambda: LSMEngine(memtable_limit=8, max_sstables=3)),
    ("log", lambda: LogEngine(gc_threshold=0.3, min_gc_records=16)),
    ("ssdb", lambda: SSDBEngine(memtable_limit=8)),
]


@pytest.mark.parametrize("name,factory", ENGINE_FACTORIES, ids=[n for n, _ in ENGINE_FACTORIES])
@settings(max_examples=60, deadline=None)
@given(sequence=ops)
def test_engine_matches_model_dict(name, factory, sequence):
    engine = factory()
    model = {}
    for op, k, v in sequence:
        if op == "put":
            engine.put(k, v)
            model[k] = v
        elif op == "del":
            if k in model:
                engine.delete(k)
                del model[k]
            else:
                with pytest.raises(KeyNotFound):
                    engine.delete(k)
        else:  # get
            if k in model:
                assert engine.get(k) == model[k]
            else:
                with pytest.raises(KeyNotFound):
                    engine.get(k)
    assert len(engine) == len(model)
    assert dict(engine.items()) == model


@settings(max_examples=60, deadline=None)
@given(sequence=ops, bounds=st.tuples(keys, keys))
def test_btree_scan_matches_sorted_model(sequence, bounds):
    engine = BTreeEngine(order=4)
    model = {}
    for op, k, v in sequence:
        if op == "put":
            engine.put(k, v)
            model[k] = v
        elif op == "del" and k in model:
            engine.delete(k)
            del model[k]
    lo, hi = min(bounds), max(bounds)
    expect = sorted((k, v) for k, v in model.items() if lo <= k < hi)
    assert engine.scan(lo, hi) == expect
    engine.check_invariants()


@settings(max_examples=60, deadline=None)
@given(sequence=ops, bounds=st.tuples(keys, keys))
def test_lsm_scan_matches_sorted_model(sequence, bounds):
    engine = LSMEngine(memtable_limit=8, max_sstables=3)
    model = {}
    for op, k, v in sequence:
        if op == "put":
            engine.put(k, v)
            model[k] = v
        elif op == "del" and k in model:
            engine.delete(k)
            del model[k]
    lo, hi = min(bounds), max(bounds)
    expect = sorted((k, v) for k, v in model.items() if lo <= k < hi)
    assert engine.scan(lo, hi) == expect


@settings(max_examples=40, deadline=None)
@given(sequence=ops)
def test_snapshot_restore_equivalence(sequence):
    """restore(snapshot()) produces an engine with identical contents,
    across engine families (snapshot from LSM into a B+-tree)."""
    src = LSMEngine(memtable_limit=8)
    model = {}
    for op, k, v in sequence:
        if op == "put":
            src.put(k, v)
            model[k] = v
        elif op == "del" and k in model:
            src.delete(k)
            del model[k]
    dst = BTreeEngine(order=4)
    dst.restore(src.snapshot())
    assert dict(dst.items()) == model
    dst.check_invariants()


@pytest.mark.parametrize("name,factory", ENGINE_FACTORIES, ids=[n for n, _ in ENGINE_FACTORIES])
@settings(max_examples=40, deadline=None)
@given(sequence=ops)
def test_snapshot_restore_roundtrip_every_engine(name, factory, sequence):
    """The snapshot/restore contract WAL recovery leans on: for every
    engine, restore(snapshot()) into a fresh instance reproduces the
    exact contents — including after deletes — and ``__len__`` agrees
    with ``items()`` on both sides."""
    src = factory()
    model = {}
    for op, k, v in sequence:
        if op == "put":
            src.put(k, v)
            model[k] = v
        elif op == "del" and k in model:
            src.delete(k)
            del model[k]
    snap = src.snapshot()
    dst = factory()
    dst.restore(snap)
    assert dict(dst.items()) == dict(src.items()) == model
    assert len(dst) == len(src) == len(model) == len(list(dst.items()))


@pytest.mark.parametrize("name,factory", ENGINE_FACTORIES, ids=[n for n, _ in ENGINE_FACTORIES])
@settings(max_examples=40, deadline=None)
@given(sequence=ops, stale=st.lists(st.tuples(keys, vals), max_size=6))
def test_reset_restore_drops_stale_state(name, factory, sequence, stale):
    """reset=True makes the engine *exactly* the snapshot: keys the
    engine held before (a rejoining node's recovered-but-stale state)
    must not survive, else deleted keys would resurrect."""
    src = factory()
    model = {}
    for op, k, v in sequence:
        if op == "put":
            src.put(k, v)
            model[k] = v
        elif op == "del" and k in model:
            src.delete(k)
            del model[k]
    dst = factory()
    for k, v in stale:
        dst.put(k, v)
    dst.restore(src.snapshot(), reset=True)
    assert dict(dst.items()) == model
    assert len(dst) == len(model)
    # and a second engine that merely delete-then-restores agrees
    again = factory()
    again.restore(src.snapshot())
    for k in list(model):
        again.delete(k)
    assert len(again) == 0
    again.restore(src.snapshot())
    assert dict(again.items()) == model and len(again) == len(model)


@settings(max_examples=40, deadline=None)
@given(sequence=ops)
def test_log_compaction_invisible(sequence):
    """Compaction at any point never changes observable contents."""
    engine = LogEngine(min_gc_records=10**9)
    model = {}
    for op, k, v in sequence:
        if op == "put":
            engine.put(k, v)
            model[k] = v
        elif op == "del" and k in model:
            engine.delete(k)
            del model[k]
    engine.compact()
    assert dict(engine.items()) == model
    assert engine.garbage_ratio() == 0.0
