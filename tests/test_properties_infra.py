"""Property-based tests for infrastructure invariants: RESP codec,
binary codec, consistent hashing, lock table, shared log, Chord."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.hybrid import P2PNode, chord_distance
from repro.dlm import LockTable
from repro.hashing import HashRing
from repro.net import resp
from repro.net.protocol import BinaryCodec
from repro.sharedlog import SharedLog

# ---------------------------------------------------------------------------
# RESP: encode → (fragmented) decode is the identity
# ---------------------------------------------------------------------------
texts = st.text(alphabet=st.characters(blacklist_characters="\r\n",
                                       blacklist_categories=("Cs",)), max_size=30)
commands = st.lists(texts, min_size=1, max_size=6)


@settings(max_examples=80, deadline=None)
@given(args=commands, chop=st.integers(min_value=1, max_value=7))
def test_resp_roundtrip_under_fragmentation(args, chop):
    data = resp.encode_command(*args)
    parser = resp.RespParser()
    decoded = resp.INCOMPLETE
    for i in range(0, len(data), chop):
        parser.feed(data[i : i + chop])
        value = parser.next_value()
        if value is not resp.INCOMPLETE:
            decoded = value
            break
    assert decoded == [a.encode() for a in args]
    assert parser.next_value() is resp.INCOMPLETE  # nothing left over


@settings(max_examples=60, deadline=None)
@given(batch=st.lists(commands, min_size=1, max_size=5))
def test_resp_pipelining_preserves_order(batch):
    parser = resp.RespParser()
    parser.feed(b"".join(resp.encode_command(*args) for args in batch))
    for args in batch:
        assert parser.next_value() == [a.encode() for a in args]
    assert parser.next_value() is resp.INCOMPLETE


# ---------------------------------------------------------------------------
# binary codec
# ---------------------------------------------------------------------------
json_values = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(-10**6, 10**6), texts),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(texts, children, max_size=4),
    max_leaves=10,
)
frames = st.dictionaries(texts, json_values, max_size=6)


@settings(max_examples=80, deadline=None)
@given(batch=st.lists(frames, min_size=1, max_size=5),
       chop=st.integers(min_value=1, max_value=9))
def test_binary_codec_roundtrip_fragmented(batch, chop):
    wire = b"".join(BinaryCodec.encode(f) for f in batch)
    codec = BinaryCodec()
    out = []
    for i in range(0, len(wire), chop):
        codec.feed(wire[i : i + chop])
        while True:
            frame = codec.next_frame()
            if frame is None or frame.__class__.__name__ == "_Incomplete":
                break
            out.append(frame)
    assert out == batch


# ---------------------------------------------------------------------------
# consistent hashing invariants
# ---------------------------------------------------------------------------
members_strategy = st.lists(
    st.text(alphabet="abcdefgh123", min_size=1, max_size=6),
    min_size=1, max_size=12, unique=True,
)


@settings(max_examples=60, deadline=None)
@given(members=members_strategy, key=texts)
def test_ring_lookup_always_a_member(members, key):
    ring = HashRing(members)
    assert ring.lookup(key) in members


@settings(max_examples=60, deadline=None)
@given(members=members_strategy, key=texts)
def test_ring_removal_only_moves_removed_members_keys(members, key):
    if len(members) < 2:
        return
    ring = HashRing(members)
    owner = ring.lookup(key)
    victim = next(m for m in members if m != owner)
    ring.remove(victim)
    assert ring.lookup(key) == owner  # unaffected key stays put


@settings(max_examples=40, deadline=None)
@given(members=members_strategy, key=texts, n=st.integers(1, 5))
def test_ring_preference_list_distinct_and_prefixed(members, key, n):
    if n > len(members):
        return
    ring = HashRing(members)
    prefs = ring.lookup_n(key, n)
    assert len(prefs) == n == len(set(prefs))
    assert prefs[0] == ring.lookup(key)


# ---------------------------------------------------------------------------
# lock table: safety invariant under arbitrary acquire/release traces
# ---------------------------------------------------------------------------
lock_ops = st.lists(
    st.tuples(
        st.sampled_from(["acquire", "release"]),
        st.sampled_from(["k1", "k2"]),
        st.sampled_from(["o1", "o2", "o3", "o4"]),
        st.sampled_from(["r", "w"]),
    ),
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(ops=lock_ops)
def test_locktable_never_mixes_writer_and_readers(ops):
    table = LockTable()
    for action, key, owner, mode in ops:
        if action == "acquire":
            table.acquire(key, owner, mode, lambda: None)
        else:
            table.release(key, owner)
        writer, readers = table.holders(key)
        # safety: a writer excludes everyone else
        if writer is not None:
            assert not readers
        assert writer is None or isinstance(writer, str)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 20))
def test_locktable_fifo_progress(n):
    """Releasing in sequence grants every queued writer exactly once."""
    table = LockTable()
    grants = []
    for i in range(n):
        table.acquire("k", f"o{i}", "w", lambda i=i: grants.append(i))
    for i in range(n):
        table.release("k", f"o{i}")
    assert grants == list(range(n))


# ---------------------------------------------------------------------------
# shared log invariants
# ---------------------------------------------------------------------------
log_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(0, 100)),
        st.tuples(st.just("trim"), st.integers(0, 50)),
    ),
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(ops=log_ops, segment=st.integers(1, 7))
def test_sharedlog_positions_dense_and_monotone(ops, segment):
    log = SharedLog(segment_size=segment)
    appended = 0
    for op, arg in ops:
        if op == "append":
            entry = log.append("w", "put", f"k{arg}", "v")
            assert entry.pos == appended
            appended += 1
        else:
            log.trim(arg)
    # retained window is contiguous [base, tail)
    entries = log.fetch_from(0, max_entries=10**6)
    assert [e.pos for e in entries] == list(range(log.base, log.tail))
    assert len(log) == log.tail - log.base


# ---------------------------------------------------------------------------
# Chord routing invariants
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 24), key=texts)
def test_chord_ownership_agreement_and_distance(n, key):
    members = [f"peer{i}" for i in range(n)]
    nodes = [P2PNode(m, members) for m in members]
    owners = {node.owner_of(key) for node in nodes}
    assert len(owners) == 1
    assert owners.pop() in members


def test_chord_distance_properties():
    ring = 1 << 64
    assert chord_distance(0, 0) == 0
    for a, b in [(1, 100), (100, 1), (ring - 1, 0)]:
        d = chord_distance(a, b)
        assert 0 <= d < ring
        assert (a + d) % ring == b
