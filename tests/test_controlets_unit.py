"""Focused controlet-level tests (wired manually, no Deployment)."""

import pytest

from repro.core.aa_sc import AAStrongControlet
from repro.core.config import ControlConfig
from repro.core.ms_ec import MSEventualControlet
from repro.core.ms_sc import MSStrongControlet
from repro.core.types import Consistency, Replica, ShardInfo, Topology
from repro.datalet import DataletActor, HashTableEngine
from repro.dlm import LockManagerActor
from repro.net import SimCluster


def shard_info(topology, consistency, n=3):
    return ShardInfo(
        "s0", topology, consistency,
        [Replica(f"c{i}", f"d{i}", f"h{i}", i) for i in range(n)],
    )


def wire(cls, topology, consistency, n=3, config=None, **extra):
    cluster = SimCluster()
    shard = shard_info(topology, consistency, n)
    config = config or ControlConfig()
    for i in range(n):
        cluster.add_actor(DataletActor(f"d{i}", HashTableEngine()), host=f"h{i}")
        cluster.add_actor(
            cls(f"c{i}", shard=ShardInfo.from_dict(shard.to_dict()), datalet=f"d{i}",
                coordinator="nocoord", config=config, **extra),
            host=f"h{i}",
        )
    port = cluster.add_port("client")
    cluster.start()
    return cluster, port, shard


# ---------------------------------------------------------------------------
# MS+SC
# ---------------------------------------------------------------------------
def test_chain_put_applies_in_chain_order():
    cluster, port, shard = wire(MSStrongControlet, Topology.MS, Consistency.STRONG)
    resp = cluster.sim.run_future(port.request("c0", "put", {"key": "k", "val": "v"}))
    assert resp.type == "ok"
    for i in range(3):
        assert cluster.actor(f"d{i}").engine.get("k") == "v"


def test_chain_rejects_write_at_non_head():
    cluster, port, shard = wire(MSStrongControlet, Topology.MS, Consistency.STRONG)
    resp = cluster.sim.run_future(port.request("c1", "put", {"key": "k", "val": "v"}))
    assert resp.payload["error"] == "redirect" and resp.payload["to"] == "c0"


def test_chain_del_missing_key_error_propagates():
    cluster, port, shard = wire(MSStrongControlet, Topology.MS, Consistency.STRONG)
    resp = cluster.sim.run_future(port.request("c0", "del", {"key": "ghost"}))
    assert resp.type == "error" and resp.payload["error"] == "not_found"


def test_chain_single_replica_degenerate():
    cluster, port, shard = wire(MSStrongControlet, Topology.MS, Consistency.STRONG, n=1)
    resp = cluster.sim.run_future(port.request("c0", "put", {"key": "k", "val": "v"}))
    assert resp.type == "ok"
    resp = cluster.sim.run_future(port.request("c0", "get", {"key": "k"}))
    assert resp.payload["val"] == "v"  # head == tail


def test_chain_write_fails_cleanly_when_successor_gone():
    config = ControlConfig(replication_timeout=0.2)
    cluster, port, shard = wire(MSStrongControlet, Topology.MS, Consistency.STRONG,
                                config=config)
    cluster.kill_host("h1")  # mid dies; no coordinator to repair the chain
    resp = cluster.sim.run_future(
        port.request("c0", "put", {"key": "k", "val": "v"}, timeout=30.0))
    assert resp.type == "error"  # bounded retries, then a clean failure


# ---------------------------------------------------------------------------
# MS+EC
# ---------------------------------------------------------------------------
def test_ms_ec_batches_propagation():
    config = ControlConfig(ec_batch_interval=0.5, ec_batch_max=1000)
    cluster, port, shard = wire(MSEventualControlet, Topology.MS,
                                Consistency.EVENTUAL, config=config)
    futs = [port.request("c0", "put", {"key": f"k{i}", "val": "v"}) for i in range(10)]
    cluster.sim.run_future(cluster.sim.gather(futs))
    master = cluster.actor("c0")
    assert master.propagated == 0  # batch not yet flushed
    assert len(cluster.actor("d1").engine) == 0
    cluster.sim.run_until(cluster.sim.now + 1.0)
    assert master.propagated == 10  # single timed flush
    assert len(cluster.actor("d1").engine) == 10


def test_ms_ec_flushes_on_batch_max():
    config = ControlConfig(ec_batch_interval=10.0, ec_batch_max=5)
    cluster, port, shard = wire(MSEventualControlet, Topology.MS,
                                Consistency.EVENTUAL, config=config)
    futs = [port.request("c0", "put", {"key": f"k{i}", "val": "v"}) for i in range(5)]
    cluster.sim.run_future(cluster.sim.gather(futs))
    cluster.sim.run_until(cluster.sim.now + 0.5)  # << batch interval
    assert cluster.actor("c0").propagated == 5  # size-triggered flush
    assert len(cluster.actor("d2").engine) == 5


def test_ms_ec_slave_redirects_writes():
    cluster, port, shard = wire(MSEventualControlet, Topology.MS, Consistency.EVENTUAL)
    resp = cluster.sim.run_future(port.request("c2", "put", {"key": "k", "val": "v"}))
    assert resp.payload["error"] == "redirect"


def test_ms_ec_any_replica_serves_reads():
    cluster, port, shard = wire(MSEventualControlet, Topology.MS, Consistency.EVENTUAL)
    cluster.sim.run_future(port.request("c0", "put", {"key": "k", "val": "v"}))
    cluster.sim.run_until(cluster.sim.now + 1.0)
    for c in ("c0", "c1", "c2"):
        resp = cluster.sim.run_future(port.request(c, "get", {"key": "k"}))
        assert resp.payload["val"] == "v"


# ---------------------------------------------------------------------------
# AA+SC
# ---------------------------------------------------------------------------
def wire_aa_sc(lease=1.0):
    cluster = SimCluster()
    cluster.add_actor(LockManagerActor("dlm", lease=lease))
    shard = shard_info(Topology.AA, Consistency.STRONG)
    for i in range(3):
        cluster.add_actor(DataletActor(f"d{i}", HashTableEngine()), host=f"h{i}")
        cluster.add_actor(
            AAStrongControlet(f"c{i}", shard=ShardInfo.from_dict(shard.to_dict()),
                              datalet=f"d{i}", coordinator="nocoord",
                              config=ControlConfig(), dlm="dlm"),
            host=f"h{i}",
        )
    port = cluster.add_port("client")
    cluster.start()
    return cluster, port


def test_aa_sc_write_reaches_all_datalets_before_ack():
    cluster, port = wire_aa_sc()
    resp = cluster.sim.run_future(port.request("c1", "put", {"key": "k", "val": "v"}))
    assert resp.type == "ok"
    for i in range(3):
        assert cluster.actor(f"d{i}").engine.get("k") == "v"
    # and the lock is released (unlock is async: let it land)
    cluster.sim.run_until(cluster.sim.now + 0.1)
    assert cluster.actor("dlm").table.holders("k") == (None, set())


def test_aa_sc_read_takes_and_releases_read_lock():
    cluster, port = wire_aa_sc()
    cluster.sim.run_future(port.request("c0", "put", {"key": "k", "val": "v"}))
    resp = cluster.sim.run_future(port.request("c2", "get", {"key": "k"}))
    assert resp.payload["val"] == "v"
    cluster.sim.run_until(cluster.sim.now + 0.1)
    assert cluster.actor("dlm").table.holders("k") == (None, set())


def test_aa_sc_relaxed_get_skips_lock():
    cluster, port = wire_aa_sc()
    cluster.sim.run_future(port.request("c0", "put", {"key": "k", "val": "v"}))
    grants_before = cluster.actor("dlm").table.grants
    resp = cluster.sim.run_future(
        port.request("c1", "get", {"key": "k", "consistency": "eventual"}))
    assert resp.payload["val"] == "v"
    assert cluster.actor("dlm").table.grants == grants_before


def test_aa_sc_lock_timeout_surfaces_error():
    """DLM unreachable: the write fails with a lock error, no deadlock."""
    cluster, port = wire_aa_sc()
    cluster.kill_host("dlm")
    resp = cluster.sim.run_future(
        port.request("c0", "put", {"key": "k", "val": "v"}, timeout=60.0))
    assert resp.type == "error" and "lock" in resp.payload["error"]
