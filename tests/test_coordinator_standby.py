"""Tests for coordinator primary/standby resilience (§VII)."""

import pytest

from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec


def build(**kw):
    dep = Deployment(
        DeploymentSpec(
            shards=2, replicas=3,
            topology=Topology.MS, consistency=Consistency.EVENTUAL,
            coordinator_standby=True, **kw,
        )
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


def test_standby_mirrors_cluster_map():
    dep, client = build()
    dep.sim.run_until(3.0)
    assert dep.standby.map.shard_ids() == dep.map.shard_ids()
    assert dep.standby.map.epoch == dep.map.epoch
    assert not dep.standby.promoted


def test_standby_serves_metadata_reads():
    dep, client = build()
    dep.sim.run_until(2.0)
    port = dep.cluster.add_port("probe")
    resp = dep.sim.run_future(
        port.request("coordinator.standby", "get_cluster_map", {}))
    assert resp.type == "cluster_map"


def test_standby_refuses_transitions_while_following():
    dep, client = build()
    dep.sim.run_until(2.0)
    port = dep.cluster.add_port("probe")
    resp = dep.sim.run_future(
        port.request("coordinator.standby", "request_transition",
                     {"topology": "aa", "consistency": "eventual"}))
    assert resp.type == "error" and "standby" in resp.payload["error"]


def test_primary_death_promotes_standby():
    dep, client = build()
    dep.sim.run_until(2.0)
    dep.cluster.kill_host("coordinator")
    dep.sim.run_until(dep.sim.now + 8.0)
    assert dep.standby.promoted
    assert dep.active_coordinator() == "coordinator.standby"


def test_client_fails_over_to_standby():
    dep, client = build()
    dep.sim.run_until(2.0)
    dep.cluster.kill_host("coordinator")
    dep.sim.run_until(dep.sim.now + 8.0)
    # a refresh must succeed via the standby
    epoch = dep.sim.run_future(client.connect())
    assert epoch == dep.standby.map.epoch
    assert client.coordinators[0] == "coordinator.standby"
    # and normal ops keep working
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    assert dep.sim.run_future(client.get("k")) == "v"


def test_promoted_standby_repairs_replica_failures():
    """The full §VII story: primary dies, standby promotes, a replica
    dies, the standby orchestrates repair + replacement recovery."""
    dep, client = build()
    for i in range(10):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 2.0)
    dep.cluster.kill_host("coordinator")
    dep.sim.run_until(dep.sim.now + 8.0)
    assert dep.standby.promoted

    victim_host = dep.standby.map.shard("s0").tail.host
    dep.cluster.kill_host(victim_host)
    dep.sim.run_until(dep.sim.now + 15.0)
    shard = dep.standby.map.shard("s0")
    assert dep.standby.failovers >= 1
    assert len(shard.replicas) == 3  # replacement joined under the standby
    # data survived and is served
    dep.sim.run_future(client.connect())
    assert dep.sim.run_future(client.get("k3")) == "3"


def test_primary_death_mid_failover_standby_completes_repair():
    """Worst-case handoff: a replica dies, the primary starts the
    repair (replacement spawned, recovery in flight), then the primary
    itself dies.  The promoted standby must finish the repair — the
    replacement reported ``recovery_done`` to both coordinators and the
    standby holds the same pending-replica bookkeeping."""
    dep, client = build()
    for i in range(10):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 2.0)

    victim_host = dep.map.shard("s0").tail.host
    dep.cluster.kill_host(victim_host)
    # step in small increments and kill the primary the instant it has
    # begun the failover, while replacement recovery is still in flight
    deadline = dep.sim.now + 10.0
    while dep.coordinator.failovers == 0 and dep.sim.now < deadline:
        dep.sim.run_until(dep.sim.now + 0.25)
    assert dep.coordinator.failovers >= 1
    dep.cluster.kill_host("coordinator")

    dep.sim.run_until(dep.sim.now + 20.0)
    assert dep.standby.promoted
    shard = dep.standby.map.shard("s0")
    assert len(shard.replicas) == 3  # the in-flight repair completed
    assert victim_host not in {r.host for r in shard.replicas}
    # and the repaired shard serves all the data through the standby
    dep.sim.run_future(client.connect())
    for i in range(10):
        assert dep.sim.run_future(client.get(f"k{i}")) == str(i)


def test_no_promotion_while_primary_alive():
    dep, client = build()
    dep.sim.run_until(20.0)
    assert not dep.standby.promoted
    assert dep.active_coordinator() == "coordinator"


def test_standby_disabled_by_default():
    dep = Deployment(DeploymentSpec(shards=1, replicas=2))
    assert dep.standby is None
    assert dep.coordinator_names() == ["coordinator"]
