"""Model-based property tests against *live* distributed deployments.

A sequential client driving an MS+SC store must observe exactly
dict semantics (strong consistency); EC stores must converge to the
model after quiescence.  Hypothesis generates the op sequences; every
example builds a fresh simulated cluster.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.types import Consistency, Topology
from repro.errors import KeyNotFound
from repro.harness import Deployment, DeploymentSpec

keys = st.sampled_from([f"k{i}" for i in range(8)])
vals = st.text(alphabet="abc123", min_size=1, max_size=5)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, vals),
        st.tuples(st.just("get"), keys, st.just("")),
        st.tuples(st.just("del"), keys, st.just("")),
    ),
    max_size=25,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build(topology, consistency):
    dep = Deployment(DeploymentSpec(shards=2, replicas=3, topology=topology,
                                    consistency=consistency))
    dep.start()
    client = dep.client("model")
    dep.sim.run_future(client.connect())
    return dep, client


@SETTINGS
@given(sequence=ops)
def test_ms_sc_sequential_client_sees_dict_semantics(sequence):
    """Strong consistency: a single sequential client can never tell
    the distributed store from a dict."""
    dep, client = build(Topology.MS, Consistency.STRONG)
    model = {}
    for op, k, v in sequence:
        if op == "put":
            dep.sim.run_future(client.put(k, v))
            model[k] = v
        elif op == "del":
            if k in model:
                dep.sim.run_future(client.delete(k))
                del model[k]
            else:
                with pytest.raises(KeyNotFound):
                    dep.sim.run_future(client.delete(k))
        else:
            if k in model:
                assert dep.sim.run_future(client.get(k)) == model[k]
            else:
                with pytest.raises(KeyNotFound):
                    dep.sim.run_future(client.get(k))


@SETTINGS
@given(sequence=ops)
def test_aa_sc_sequential_client_sees_dict_semantics(sequence):
    dep, client = build(Topology.AA, Consistency.STRONG)
    model = {}
    for op, k, v in sequence:
        if op == "put":
            dep.sim.run_future(client.put(k, v))
            model[k] = v
        elif op == "del":
            if k in model:
                dep.sim.run_future(client.delete(k))
                del model[k]
            # AA+SC delete-missing may race replica lag; skip negative case
        else:
            if k in model:
                assert dep.sim.run_future(client.get(k)) == model[k]


@SETTINGS
@given(sequence=ops, topology=st.sampled_from([Topology.MS, Topology.AA]))
def test_ec_stores_converge_to_model_after_quiescence(sequence, topology):
    """Eventual consistency: after the writers stop and propagation
    quiesces, *every* replica equals the model."""
    dep, client = build(topology, Consistency.EVENTUAL)
    model = {}
    for op, k, v in sequence:
        if op == "put":
            dep.sim.run_future(client.put(k, v))
            model[k] = v
        elif op == "del" and k in model:
            dep.sim.run_future(client.delete(k))
            del model[k]
    dep.sim.run_until(dep.sim.now + 3.0)
    for sid in dep.map.shard_ids():
        for replica in dep.map.shard(sid).ordered():
            engine = dep.cluster.actor(replica.datalet).engine
            shard_model = {k: v for k, v in model.items()
                           if client.shard_for(k).shard_id == sid}
            assert dict(engine.items()) == shard_model, replica.datalet
