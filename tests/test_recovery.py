"""Durable crash-restart recovery: WAL replay end-to-end, the rejoin
path, and the recovery-correctness oracle (check_recovery)."""

import pytest

from repro.chaos import FaultEvent, FaultSchedule, RecoveryRecord, check_recovery
from repro.chaos.history import OpRecord
from repro.chaos.runner import run_combo
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec


# ---------------------------------------------------------------------------
# end-to-end: crash a durable replica, power-cycle it back from disk
# ---------------------------------------------------------------------------
def build_durable(**kw):
    kw.setdefault("shards", 1)
    kw.setdefault("replicas", 3)
    kw.setdefault("topology", Topology.MS)
    kw.setdefault("consistency", Consistency.STRONG)
    kw.setdefault("durable", True)
    kw.setdefault("seed", 5)
    dep = Deployment(DeploymentSpec(**kw))
    dep.start()
    return dep


def test_recover_host_replays_wal_and_rejoins():
    dep = build_durable()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    for i in range(10):
        dep.sim.run_future(client.put(f"k{i}", f"v{i}"))
    victim = dep.replica_host(0, 1)  # mid-chain replica
    dep.cluster.kill_host(victim)
    dep.sim.run_until(dep.sim.now + 0.5)  # inside the detection window
    rec = dep.recover_host(victim)
    assert rec is not None and rec.host == victim
    # sync_every=1: every acked write was fsynced, so replay must
    # recover all of them — the durability floor, with no torn tail
    assert rec.durable_seq_at_crash == 10
    assert rec.replayed_seq >= rec.durable_seq_at_crash
    assert rec.recovered == {f"k{i}": f"v{i}" for i in range(10)}
    dep.sim.run_until(dep.sim.now + 5.0)
    for i in range(10):
        assert dep.sim.run_future(client.get(f"k{i}")) == f"v{i}"


def test_recover_host_group_commit_may_lose_unsynced_tail():
    dep = build_durable(wal_sync_every=4, durable_loss="all", seed=9)
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    for i in range(10):
        dep.sim.run_future(client.put(f"k{i}", f"v{i}"))
    victim = dep.replica_host(0, 2)
    dep.cluster.kill_host(victim)
    dep.sim.run_until(dep.sim.now + 0.5)
    rec = dep.recover_host(victim)
    # group commit: the fsync point trails the ack point, and the crash
    # dropped the whole unsynced suffix -- but never a synced record
    assert rec.durable_seq_at_crash == 8  # last group boundary
    assert rec.replayed_seq >= rec.durable_seq_at_crash
    # catch-up from the surviving chain re-supplies the lost tail
    dep.sim.run_until(dep.sim.now + 5.0)
    for i in range(10):
        assert dep.sim.run_future(client.get(f"k{i}")) == f"v{i}"


def test_recover_host_without_durable_falls_back_to_thaw():
    dep = build_durable(durable=False)
    victim = dep.replica_host(0, 1)
    dep.cluster.kill_host(victim)
    assert dep.recover_host(victim) is None
    assert dep.cluster.is_host_alive(victim)


# ---------------------------------------------------------------------------
# full chaos runs with recover-restarts, oracle-gated
# ---------------------------------------------------------------------------
def restart_schedule(target):
    return FaultSchedule(events=[
        FaultEvent(at=3.0, kind="crash", target=target),
        FaultEvent(at=3.6, kind="restart", target=target, recover=True),
    ])


def test_run_combo_recover_restart_replica_passes_oracle():
    res = run_combo(Topology.MS, Consistency.STRONG, seed=4, duration=12.0,
                    schedule=restart_schedule("node0.1"), durable=True)
    assert res.report.ok, res.report.violations
    assert res.stats["recoveries"] == 1


def test_run_combo_recover_restart_ec_master_reconverges():
    """Regression: a rejoined EC master must mint a fresh stream
    incarnation — resuming at seq 0 under the old identity made slaves
    drop every post-rejoin batch as a stale duplicate."""
    res = run_combo(Topology.MS, Consistency.EVENTUAL, seed=4, duration=12.0,
                    schedule=restart_schedule("node0.0"), durable=True)
    assert res.report.ok, res.report.violations
    assert res.stats["recoveries"] == 1


# ---------------------------------------------------------------------------
# check_recovery unit cases
# ---------------------------------------------------------------------------
_op_ids = iter(range(10**6))


def op(o, key, value=None, invoke=0.0, response=0.1, status="ok",
       client="c0"):
    return OpRecord(op_id=next(_op_ids), client=client, op=o, key=key,
                    value=value, invoke=invoke, response=response,
                    status=status)


def recovery(**kw):
    kw.setdefault("host", "node0.1")
    kw.setdefault("shard_id", "s0")
    kw.setdefault("datalet", "d0.1")
    kw.setdefault("crash_time", 5.0)
    kw.setdefault("recover_time", 5.5)
    kw.setdefault("durable_seq_at_crash", 0)
    kw.setdefault("replayed_seq", 0)
    kw.setdefault("snapshot_seq", 0)
    kw.setdefault("records_applied", 0)
    kw.setdefault("torn_tail_dropped", 0)
    return RecoveryRecord(**kw)


def test_check_recovery_clean_run():
    records = [op("put", "k", "v", invoke=1.0, response=1.1)]
    recs = [recovery(durable_seq_at_crash=3, replayed_seq=3,
                     records_applied=3, recovered={"k": "v"})]
    dumps = {"s0": {"d0.0": {"k": "v"}, "d0.1": {"k": "v"}}}
    report = check_recovery(records, recs, dumps)
    assert report.ok
    assert report.stats["recoveries"] == 1
    assert report.stats["settled_writes"] == 1


def test_check_recovery_durability_floor():
    report = check_recovery([], [recovery(durable_seq_at_crash=7,
                                          replayed_seq=5)], {})
    assert not report.ok
    assert report.stats["floor_failures"] == 1
    assert "synced record was lost" in report.violations[0]


def test_check_recovery_invented_value():
    records = [op("put", "k", "v", invoke=1.0, response=1.1)]
    recs = [recovery(recovered={"k": "never-written"})]
    report = check_recovery(records, recs, {})
    assert any("never written" in v for v in report.violations)


def test_check_recovery_resurrected_delete_after_replay():
    records = [
        op("put", "k", "v", invoke=1.0, response=1.1),
        op("del", "k", invoke=2.0, response=2.1),
    ]
    recs = [recovery(crash_time=4.0, recovered={"k": "v"})]
    report = check_recovery(records, recs, {}, strong=True, synced_acks=True)
    assert any("resurrected" in v for v in report.violations)
    # without per-ack fsync the replayed state may legally predate the
    # delete; only the *final* converged state is audited then
    assert check_recovery(records, recs, {}, strong=True,
                          synced_acks=False).ok


def test_check_recovery_settled_delete_must_stay_deleted():
    records = [
        op("put", "k", "v", invoke=1.0, response=1.1),
        op("del", "k", invoke=2.0, response=2.1),
    ]
    dumps = {"s0": {"d0.0": {}, "d0.1": {"k": "v"}}}  # one replica kept it
    report = check_recovery(records, [], dumps)
    assert any("resurrected settled-deleted" in v for v in report.violations)


def test_check_recovery_settled_write_must_survive_everywhere():
    records = [op("put", "k", "new", invoke=1.0, response=1.1)]
    stale = {"s0": {"d0.0": {"k": "new"}, "d0.1": {"k": "old"}}}
    report = check_recovery(records, [], stale)
    assert any("settled write" in v for v in report.violations)
    gone = {"s0": {"d0.0": {}, "d0.1": {}}}
    report = check_recovery(records, [], gone)
    assert any("acked write lost" in v for v in report.violations)


def test_check_recovery_non_durable_acks_demote_to_warnings():
    """MS+EC group commit: the ack never implied a durable copy, so a
    crash rolling back the acked unsynced tail (and the rejoined master
    resyncing slaves to it) is legal — reported, but as warnings."""
    records = [op("put", "k", "new", invoke=1.0, response=1.1)]
    stale = {"s0": {"d0.0": {"k": "old"}, "d0.1": {"k": "old"}}}
    report = check_recovery(records, [], stale, strong=False,
                            synced_acks=False, ack_durable=False)
    assert report.ok
    assert report.stats["final_state_issues"] == 2  # one per stale replica
    assert any("legal: acks not durable" in w for w in report.warnings)
    # the durability floor is never relaxed: a *synced* record lost is
    # a violation under any ack regime
    floor = check_recovery([], [recovery(durable_seq_at_crash=7,
                                         replayed_seq=5)], {},
                           strong=False, synced_acks=False,
                           ack_durable=False)
    assert not floor.ok


def test_check_recovery_unsettled_keys_are_not_judged():
    # the failed put's ghost may land at any time: nothing is promised
    records = [
        op("put", "k", "a", invoke=1.0, response=1.1),
        op("put", "k", "b", invoke=2.0, response=None, status="failed"),
    ]
    dumps = {"s0": {"d0.0": {"k": "b"}, "d0.1": {"k": "a"}}}
    assert check_recovery(records, [], dumps).ok
