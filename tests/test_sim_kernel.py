"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_later_fires_in_order():
    sim = Simulator()
    fired = []
    sim.call_later(2.0, fired.append, "b")
    sim.call_later(1.0, fired.append, "a")
    sim.call_later(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fifo():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.call_later(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.call_later(5.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [5.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-1.0, lambda: None)


def test_call_at_past_rejected():
    sim = Simulator()
    sim.call_later(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_timer_cancellation():
    sim = Simulator()
    fired = []
    handle = sim.call_later(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_run_until_leaves_clock_at_deadline():
    sim = Simulator()
    sim.call_later(1.0, lambda: None)
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_run_until_does_not_execute_past_deadline():
    sim = Simulator()
    fired = []
    sim.call_later(1.0, fired.append, 1)
    sim.call_later(5.0, fired.append, 5)
    sim.run_until(3.0)
    assert fired == [1]
    sim.run_until(6.0)
    assert fired == [1, 5]


def test_stop_interrupts_run():
    sim = Simulator()
    fired = []
    sim.call_later(1.0, fired.append, 1)
    sim.call_later(1.0, sim.stop)
    sim.call_later(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_future_result_and_callback_order():
    sim = Simulator()
    seen = []
    fut = sim.create_future()
    fut.add_done_callback(lambda f: seen.append(("cb", f.result())))
    sim.call_later(1.0, fut.set_result, 42)
    sim.run()
    assert seen == [("cb", 42)]
    assert fut.result() == 42


def test_future_double_set_rejected():
    sim = Simulator()
    fut = sim.create_future()
    fut.set_result(1)
    with pytest.raises(SimulationError):
        fut.set_result(2)


def test_future_late_callback_fires():
    sim = Simulator()
    fut = sim.create_future()
    fut.set_result("v")
    seen = []
    fut.add_done_callback(lambda f: seen.append(f.result()))
    sim.run()
    assert seen == ["v"]


def test_future_exception_propagates():
    sim = Simulator()
    fut = sim.create_future()
    fut.set_exception(ValueError("boom"))
    sim.run()
    with pytest.raises(ValueError):
        fut.result()


def test_process_sleep_and_return():
    sim = Simulator()

    def proc():
        yield 1.0
        yield 2.5
        return sim.now

    result = sim.run_future(sim.spawn(proc()))
    assert result == 3.5


def test_process_awaits_future():
    sim = Simulator()
    gate = sim.create_future()

    def proc():
        value = yield gate
        return value * 2

    fut = sim.spawn(proc())
    sim.call_later(4.0, gate.set_result, 21)
    assert sim.run_future(fut) == 42
    assert sim.now == 4.0


def test_process_exception_reaches_awaiter():
    sim = Simulator()

    def proc():
        yield 1.0
        raise RuntimeError("crash")

    fut = sim.spawn(proc())
    sim.run()
    with pytest.raises(RuntimeError):
        fut.result()


def test_process_receives_thrown_exception():
    sim = Simulator()
    gate = sim.create_future()
    caught = []

    def proc():
        try:
            yield gate
        except ValueError as e:
            caught.append(str(e))
        return "survived"

    fut = sim.spawn(proc())
    sim.call_later(1.0, gate.set_exception, ValueError("inner"))
    assert sim.run_future(fut) == "survived"
    assert caught == ["inner"]


def test_process_invalid_yield_errors():
    sim = Simulator()

    def proc():
        yield "not-a-delay"

    fut = sim.spawn(proc())
    sim.run()
    with pytest.raises(SimulationError):
        fut.result()


def test_gather_collects_in_input_order():
    sim = Simulator()
    futs = [sim.create_future() for _ in range(3)]
    sim.call_later(3.0, futs[0].set_result, "a")
    sim.call_later(1.0, futs[1].set_result, "b")
    sim.call_later(2.0, futs[2].set_result, "c")
    out = sim.gather(futs)
    sim.run()
    assert out.result() == ["a", "b", "c"]


def test_gather_empty():
    sim = Simulator()
    out = sim.gather([])
    sim.run()
    assert out.result() == []


def test_gather_propagates_first_exception():
    sim = Simulator()
    futs = [sim.create_future(), sim.create_future()]
    sim.call_later(1.0, futs[0].set_exception, KeyError("k"))
    sim.call_later(2.0, futs[1].set_result, "late")
    out = sim.gather(futs)
    sim.run()
    with pytest.raises(KeyError):
        out.result()


def test_run_future_timeout():
    sim = Simulator()
    fut = sim.create_future()
    sim.call_later(100.0, fut.set_result, None)
    with pytest.raises(SimulationError):
        sim.run_future(fut, timeout=10.0)


def test_run_future_quiesce_error():
    sim = Simulator()
    fut = sim.create_future()  # nothing will ever resolve it
    with pytest.raises(SimulationError):
        sim.run_future(fut)


def test_determinism_same_schedule_twice():
    def build():
        sim = Simulator()
        order = []
        for i in range(50):
            sim.call_later((i * 7919) % 13 * 0.1, order.append, i)
        sim.run()
        return order

    assert build() == build()


def test_process_loop_over_completed_futures_no_recursion():
    """Yielding already-resolved futures thousands of times must not
    blow the stack (resume is deferred, not inline, in that case)."""
    sim = Simulator()
    done = sim.create_future()
    done.set_result("v")

    def proc():
        total = 0
        for _ in range(5000):
            value = yield done
            assert value == "v"
            total += 1
        return total

    assert sim.run_future(sim.spawn(proc())) == 5000
