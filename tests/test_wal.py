"""WAL + DurableStore unit tests (repro.datalet.wal, repro.sim.durable).

The durability layer under the datalets: byte-level simulated disk with
fsync watermarks and seeded power-loss damage, and the seq-numbered,
checksummed, torn-tail-tolerant write-ahead log on top of it.
"""

import pytest

from repro.datalet import HashTableEngine
from repro.datalet.wal import WriteAheadLog, _encode
from repro.errors import ConfigError, WalCorruption
from repro.sim.durable import DurableStore
from repro.sim.rng import RngRegistry


def make_store(policy="partial", seed=7):
    return DurableStore(
        "h0", RngRegistry(seed).stream("durable.h0"), unsynced_loss=policy
    )


def replayed_dict(store, name="d0"):
    wal = WriteAheadLog(store, name)
    engine = HashTableEngine()
    result = wal.replay(engine)
    return dict(engine.items()), result, wal


# ---------------------------------------------------------------------------
# DurableFile / DurableStore byte model
# ---------------------------------------------------------------------------
def test_append_sync_watermark():
    f = make_store().file("a.log")
    f.append(b"one\n")
    assert (f.size, f.synced_size) == (4, 0)
    f.sync()
    assert f.synced_size == 4
    f.append(b"two\n")
    assert (f.size, f.synced_size) == (8, 4)


def test_crash_never_loses_synced_bytes():
    for policy in ("partial", "all", "none"):
        store = make_store(policy)
        f = store.file("a.log")
        f.append(b"synced\n")
        f.sync()
        f.append(b"dirty\n")
        store.on_crash(now=1.0)
        assert f.read()[:7] == b"synced\n"
        assert store.crashes == 1 and store.last_crash_at == 1.0


def test_crash_loss_policies():
    store = make_store("all")
    f = store.file("a.log")
    f.append(b"synced\n")
    f.sync()
    f.append(b"dirty\n")
    assert store.on_crash(now=1.0) == 6  # whole unsynced suffix gone
    assert f.read() == b"synced\n"

    store = make_store("none")
    f = store.file("a.log")
    f.append(b"dirty\n")
    assert store.on_crash(now=1.0) == 0  # battery-backed cache
    assert f.read() == b"dirty\n"

    store = make_store("partial")
    f = store.file("a.log")
    f.append(b"0123456789")
    lost = store.on_crash(now=1.0)
    assert 0 <= lost <= 10
    assert f.read() == b"0123456789"[: 10 - lost]  # prefix, torn tail


def test_replace_is_atomic_across_crash():
    store = make_store()
    f = store.file("a.snap")
    f.append(b"old")
    f.sync()
    f.replace(b"new-content")
    # crash before the sync: the staged temp file is simply gone
    store.on_crash(now=1.0)
    assert f.read() == b"old"
    # replace + sync commits
    f.replace(b"new-content")
    f.sync()
    assert f.read() == b"new-content"


def test_append_while_replace_staged_rejected():
    f = make_store().file("a")
    f.replace(b"x")
    with pytest.raises(ConfigError):
        f.append(b"y")


def test_store_validates_loss_policy_and_lists_sorted():
    with pytest.raises(ConfigError):
        make_store("most")
    store = make_store()
    store.file("b")
    store.file("a")
    assert store.files() == ["a", "b"]


# ---------------------------------------------------------------------------
# WriteAheadLog: write path
# ---------------------------------------------------------------------------
def test_append_replay_roundtrip():
    store = make_store()
    wal = WriteAheadLog(store, "d0")
    wal.append("put", "k1", "v1")
    wal.append("put", "k2", "v2")
    wal.append("del", "k1")
    wal.append("put", "k2", "v3")
    data, result, _ = replayed_dict(store)
    assert data == {"k2": "v3"}
    assert (result.records_applied, result.applied_seq) == (4, 4)
    assert result.torn_tail_dropped == 0


def test_sync_every_is_group_commit():
    wal = WriteAheadLog(make_store(), "d0", sync_every=3)
    assert wal.append("put", "a", "1") == 1
    assert wal.durable_seq == 0  # page cache only
    wal.append("put", "b", "2")
    assert wal.durable_seq == 0
    wal.append("put", "c", "3")
    assert wal.durable_seq == 3  # third append crossed the group size
    assert wal.syncs == 1


def test_unsynced_tail_lost_on_crash():
    store = make_store("all")
    wal = WriteAheadLog(store, "d0", sync_every=100)
    wal.append("put", "a", "1")
    wal.sync()
    wal.append("put", "b", "2")  # never synced
    store.on_crash(now=1.0)
    data, result, reopened = replayed_dict(store)
    assert data == {"a": "1"}
    assert result.applied_seq == 1
    # a reopened WAL continues the surviving sequence
    assert reopened.seq == 1 and reopened.durable_seq == 1


def test_torn_tail_is_dropped_not_fatal():
    store = make_store()
    wal = WriteAheadLog(store, "d0")
    wal.append("put", "a", "1")
    # an interrupted append: garbage bytes after the last valid record
    store.file("d0.log").append(b'{"s":2,"o":"put","k":"b"')
    data, result, _ = replayed_dict(store)
    assert data == {"a": "1"}
    assert result.torn_tail_dropped == 1


def test_midfile_damage_raises_wal_corruption():
    store = make_store()
    log = store.file("d0.log")
    log.append(b"garbage line\n")  # damaged record *followed by* a valid one
    log.append(_encode({"s": 2, "o": "put", "k": "b", "v": "2"}))
    with pytest.raises(WalCorruption):
        replayed_dict(store)


def test_sequence_regression_raises_wal_corruption():
    store = make_store()
    log = store.file("d0.log")
    log.append(_encode({"s": 5, "o": "put", "k": "a", "v": "1"}))
    log.append(_encode({"s": 3, "o": "put", "k": "b", "v": "2"}))
    with pytest.raises(WalCorruption):
        replayed_dict(store)


def test_checksum_flip_detected():
    store = make_store()
    wal = WriteAheadLog(store, "d0")
    wal.append("put", "a", "1")
    wal.append("put", "b", "2")
    f = store.file("d0.log")
    raw = bytearray(f.read())
    raw[2] ^= 0xFF  # flip a byte in the first record's body
    f._data = raw
    f._synced = len(raw)
    with pytest.raises(WalCorruption):  # not the tail -> media corruption
        replayed_dict(store)


# ---------------------------------------------------------------------------
# WriteAheadLog: snapshots & compaction
# ---------------------------------------------------------------------------
def test_snapshot_truncates_log_and_replays():
    store = make_store()
    wal = WriteAheadLog(store, "d0", snapshot_every=4)
    engine = HashTableEngine()
    for i in range(4):
        wal.append("put", f"k{i}", str(i))
        engine.put(f"k{i}", str(i))
    assert wal.wants_snapshot
    assert wal.maybe_snapshot(dict(engine.items()))
    assert store.file("d0.log").size == 0  # log truncated
    wal.append("put", "k9", "9")  # post-snapshot record
    data, result, _ = replayed_dict(store)
    assert data == {"k0": "0", "k1": "1", "k2": "2", "k3": "3", "k9": "9"}
    assert result.snapshot_seq == 4 and result.records_applied == 1
    assert result.restored_keys == 4


def test_crash_between_snapshot_commit_and_truncate():
    """Records <= snapshot seq surviving in the log replay idempotently
    (skipped by sequence number)."""
    store = make_store("none")
    wal = WriteAheadLog(store, "d0")
    wal.append("put", "a", "old")
    wal.append("put", "a", "new")
    # snapshot committed but truncate lost: rebuild that disk state
    store.file("d0.snap").replace(_encode({"s": 2, "data": {"a": "new"}}))
    store.file("d0.snap").sync()
    data, result, _ = replayed_dict(store)
    assert data == {"a": "new"}
    assert result.records_applied == 0  # both records skipped by seq


def test_maybe_snapshot_below_threshold_is_noop():
    wal = WriteAheadLog(make_store(), "d0", snapshot_every=100)
    wal.append("put", "a", "1")
    assert not wal.wants_snapshot
    assert not wal.maybe_snapshot({"a": "1"})
    assert wal.snapshots == 0


def test_stats_exposed():
    wal = WriteAheadLog(make_store(), "d0")
    wal.append("put", "a", "1")
    s = wal.stats()
    assert s["wal_seq"] == 1.0 and s["wal_durable_seq"] == 1.0
    assert s["wal_appends"] == 1.0 and s["wal_log_bytes"] > 0
