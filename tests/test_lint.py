"""Tests for the determinism linter (repro.analysis.lint)."""

import textwrap

from repro.analysis import (
    DEFAULT_ALLOWLIST,
    format_findings,
    lint_source,
    run_lint,
    summarize,
)
from repro.cli import main


def lint(source, rel_path="core/x.py", **kw):
    return lint_source(textwrap.dedent(source), rel_path, **kw)


def visible(findings):
    return [(f.rule, f.line) for f in findings if not f.suppressed]


def rules(findings):
    return [f.rule for f in findings if not f.suppressed]


# ---------------------------------------------------------------------------
# wallclock
# ---------------------------------------------------------------------------
def test_wallclock_time_flagged_everywhere():
    src = """
        import time
        def f():
            return time.time()
    """
    assert rules(lint(src, "workloads/w.py")) == ["wallclock"]
    assert rules(lint(src, "core/x.py")) == ["wallclock"]


def test_wallclock_aliased_import_and_sleep():
    src = """
        import time as t
        def f():
            t.sleep(1.0)
    """
    assert rules(lint(src)) == ["wallclock"]


def test_wallclock_datetime_now():
    src = """
        from datetime import datetime
        def f():
            return datetime.now()
    """
    assert rules(lint(src)) == ["wallclock"]


def test_virtual_clock_reads_are_clean():
    src = """
        def f(self):
            return self.now() + self.sim.now
    """
    assert rules(lint(src)) == []


def test_wallclock_allowlisted_for_harness():
    src = """
        import time
        def f():
            return time.time()
    """
    findings = lint(src, "harness/loadgen.py")
    assert rules(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["wallclock"]


# ---------------------------------------------------------------------------
# global-rng / adhoc-rng
# ---------------------------------------------------------------------------
def test_global_rng_module_functions_flagged():
    src = """
        import random
        def f():
            return random.random() + random.randrange(5)
    """
    assert rules(lint(src, "workloads/w.py")) == ["global-rng", "global-rng"]


def test_unseeded_random_and_entropy_sources_flagged():
    src = """
        import os
        import random
        import uuid
        def f():
            r = random.Random()
            return os.urandom(8), uuid.uuid4(), r
    """
    assert sorted(rules(lint(src))) == ["global-rng", "global-rng", "global-rng"]


def test_seeded_random_is_adhoc_only_in_protocol_code():
    src = """
        import random
        def f(seed):
            return random.Random(seed)
    """
    assert rules(lint(src, "core/x.py")) == ["adhoc-rng"]
    # outside the protocol dirs a seeded Random is fine (e.g. workloads)
    assert rules(lint(src, "workloads/w.py")) == []


def test_registry_stream_usage_is_clean():
    src = """
        def f(self):
            rng = self.cluster.rng.stream("quorum.n1")
            return rng.random()
    """
    assert rules(lint(src)) == []


# ---------------------------------------------------------------------------
# set-iteration / hash-ordering
# ---------------------------------------------------------------------------
def test_for_loop_over_set_flagged_in_protocol_code():
    src = """
        def f():
            s = {1, 2, 3}
            for x in s:
                print(x)
    """
    assert rules(lint(src, "core/x.py")) == ["set-iteration"]
    assert rules(lint(src, "workloads/w.py")) == []


def test_comprehension_and_list_wrapper_over_set_flagged():
    src = """
        def f(self):
            pending = set()
            a = [x for x in pending]
            b = list(pending)
            return a, b
    """
    assert rules(lint(src)) == ["set-iteration", "set-iteration"]


def test_sorted_over_set_is_blessed():
    src = """
        def f():
            s = {1, 2, 3}
            for x in sorted(s):
                print(x)
            return sorted(y for y in s) + [min(s), len(s)]
    """
    assert rules(lint(src)) == []


def test_builtin_hash_and_id_flagged_in_protocol_code():
    src = """
        def f(key, obj):
            return hash(key) % 7, id(obj)
    """
    assert sorted(rules(lint(src, "core/x.py"))) == ["hash-ordering", "hash-ordering"]
    assert rules(lint(src, "workloads/w.py")) == []


def test_stable_hash_is_clean():
    src = """
        from repro.hashing import stable_hash
        def f(key):
            return stable_hash(key) % 7
    """
    assert rules(lint(src, "core/x.py")) == []


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------
def test_pragma_on_offending_line_suppresses():
    src = """
        import time
        def f():
            return time.time()  # lint: allow[wallclock]
    """
    findings = lint(src)
    assert rules(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["wallclock"]


def test_pragma_on_line_above_suppresses():
    src = """
        import time
        def f():
            # lint: allow[wallclock]
            return time.time()
    """
    assert rules(lint(src)) == []


def test_pragma_wildcard_and_wrong_rule():
    src = """
        import time
        def f():
            return time.time()  # lint: allow[*]
    """
    assert rules(lint(src)) == []
    wrong = """
        import time
        def f():
            return time.time()  # lint: allow[set-iteration]
    """
    assert rules(lint(wrong)) == ["wallclock"]


# ---------------------------------------------------------------------------
# mutable-payload
# ---------------------------------------------------------------------------
def test_mutable_payload_true_positive_method_mutation():
    src = """
        class C:
            def flush(self, peer):
                ops = [{"op": "put"}]
                self.send(peer, "replicate", {"ops": ops})
                ops.append({"op": "del"})
    """
    assert rules(lint(src)) == ["mutable-payload"]


def test_mutable_payload_subscript_and_del_after_send():
    src = """
        class C:
            def f(self, peer):
                payload = {"k": 1}
                self.call(peer, "m", payload, callback=None)
                payload["k"] = 2
                del payload["k"]
    """
    assert rules(lint(src)) == ["mutable-payload", "mutable-payload"]


def test_mutable_payload_closure_mutation_is_caught():
    """Completion callbacks run after the send — the classic shape."""
    src = """
        class C:
            def f(self, peer):
                state = {"n": 2}
                def done(resp, err):
                    state["n"] -= 1
                self.call(peer, "m", {"state": state}, callback=done)
    """
    # the AugAssign inside the closure textually precedes the send but
    # executes after it; the heuristic keys on the *send* of `state`
    # reaching any mutation at a later line — here the closure body is
    # earlier, so this documents the known blind spot instead
    findings = rules(lint(src))
    assert findings in ([], ["mutable-payload"])


def test_mutable_payload_rebind_clears_the_alias():
    src = """
        class C:
            def f(self, peer):
                payload = {"k": 1}
                self.send(peer, "m", payload)
                payload = {"k": 2}
                payload["k"] = 3
    """
    assert rules(lint(src)) == []


def test_mutable_payload_mutation_before_send_is_fine():
    src = """
        class C:
            def f(self, peer):
                payload = {"k": 1}
                payload["k"] = 2
                self.send(peer, "m", payload)
    """
    assert rules(lint(src)) == []


def test_mutable_payload_pragma_suppresses():
    src = """
        class C:
            def f(self, peer):
                payload = {"k": 1}
                self.send(peer, "m", payload)
                payload["k"] = 2  # lint: allow[mutable-payload] test fixture
    """
    findings = lint(src)
    assert rules(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["mutable-payload"]


def test_mutable_payload_scoped_to_protocol_dirs():
    src = """
        class C:
            def f(self, peer):
                payload = {"k": 1}
                self.send(peer, "m", payload)
                payload["k"] = 2
    """
    assert rules(lint(src, "workloads/w.py")) == []


def test_mutable_payload_dict_copy_argument_not_aliased():
    """dict(payload) copies its top level; sending it does not alias
    the name itself."""
    src = """
        class C:
            def f(self, peer):
                payload = {"k": 1}
                self.send(peer, "m", dict(payload))
                payload["k"] = 2
    """
    assert rules(lint(src)) == []


# ---------------------------------------------------------------------------
# output formats
# ---------------------------------------------------------------------------
def test_findings_json_envelope():
    import json

    from repro.analysis import FINDINGS_SCHEMA, findings_to_json

    src = """
        import time
        def f():
            return time.time()
        def g():
            return time.time()  # lint: allow[wallclock]
    """
    findings = lint(src)
    doc = json.loads(findings_to_json(findings))
    assert doc["schema"] == FINDINGS_SCHEMA
    assert doc["summary"]["errors"] == 1
    assert doc["summary"]["suppressed"] == 1
    assert len(doc["findings"]) == 2  # suppressed kept for audit
    f0 = doc["findings"][0]
    assert set(f0) == {"path", "line", "rule", "message", "severity", "suppressed"}
    assert f0["path"] == "core/x.py" and f0["rule"] == "wallclock"


def test_findings_github_annotations():
    from repro.analysis import format_github

    src = """
        import time
        def f():
            return time.time()
        def g():
            return time.time()  # lint: allow[wallclock]
    """
    out = format_github(lint(src), prefix="src/repro/")
    lines = out.splitlines()
    assert len(lines) == 1  # suppressed findings are not annotated
    assert lines[0].startswith("::error file=src/repro/core/x.py,line=4,")
    assert "title=lint wallclock::" in lines[0]


def test_github_annotation_escapes_newlines():
    from repro.analysis import Finding, format_github

    f = Finding(path="a.py", line=1, rule="r", message="bad\nthing 100%")
    out = format_github([f])
    assert "\n" not in out
    assert "%0A" in out and "%25" in out


# ---------------------------------------------------------------------------
# fs-ordering (WAL replay / durable-store iteration must not depend on
# filesystem listing order)
# ---------------------------------------------------------------------------
def test_fs_ordering_flags_unsorted_listings():
    src = """
        import glob
        import os
        def f(p):
            return os.listdir(p), os.scandir(p), glob.glob("*.log")
    """
    assert rules(lint(src, "datalet/wal.py")) == ["fs-ordering"] * 3


def test_fs_ordering_flags_path_methods():
    src = """
        def f(p):
            for entry in p.iterdir():
                yield entry
            return list(p.rglob("*.snap"))
    """
    assert rules(lint(src, "sim/durable.py")) == ["fs-ordering"] * 2


def test_fs_ordering_sorted_wrapper_is_the_sanctioned_idiom():
    src = """
        import os
        def f(p):
            return sorted(os.listdir(p))
    """
    assert rules(lint(src, "datalet/wal.py")) == []


def test_fs_ordering_only_in_protocol_code():
    src = """
        import os
        def f(p):
            return os.listdir(p)
    """
    assert rules(lint(src, "analysis/report.py")) == []
    assert rules(lint(src, "core/x.py")) == ["fs-ordering"]


def test_fs_ordering_pragma_escape():
    src = """
        import os
        def f(p):
            return os.listdir(p)  # lint: allow[fs-ordering]
    """
    findings = lint(src, "datalet/wal.py")
    assert rules(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["fs-ordering"]


# ---------------------------------------------------------------------------
# whole tree + CLI
# ---------------------------------------------------------------------------
def test_package_tree_is_clean():
    findings = run_lint()
    bad = [f for f in findings if not f.suppressed]
    assert bad == [], format_findings(bad)
    # the allowlist/pragma escapes are in use, not dead config
    assert summarize(findings)["suppressed"] > 0


def test_cli_lint_strict_passes(capsys):
    assert main(["lint", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_lint_fails_on_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "core"
    bad.mkdir()
    (bad / "evil.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    rc = main(["lint", "--root", str(tmp_path), "--no-conformance"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "wallclock" in out and "core/evil.py" in out


def test_cli_lint_show_suppressed(capsys):
    assert main(["lint", "--show-suppressed"]) == 0
    out = capsys.readouterr().out
    # cli.py's bench timing pragma shows up as a suppressed wallclock hit
    assert "allowed" in out and "cli.py" in out


def test_cli_lint_format_json(capsys):
    import json

    assert main(["lint", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.lint.findings/1"
    assert doc["summary"]["errors"] == 0


def test_cli_lint_format_github_on_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "core"
    bad.mkdir()
    (bad / "evil.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    rc = main(["lint", "--root", str(tmp_path), "--no-conformance",
               "--format", "github", "--path-prefix", "seeded/"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "::error file=seeded/core/evil.py,line=4," in out
    assert "1 error(s)" in out


def test_default_allowlist_documents_rng_constructor():
    assert "adhoc-rng" in DEFAULT_ALLOWLIST["sim/rng.py"]
