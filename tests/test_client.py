"""Unit/behavior tests for the KV client library (routing, retries,
per-request consistency, table API edge cases)."""

import pytest

from repro.core.types import Consistency, Topology
from repro.errors import BespoError, KeyNotFound
from repro.harness import Deployment, DeploymentSpec


def build(topology=Topology.MS, consistency=Consistency.STRONG, **kw):
    dep = Deployment(DeploymentSpec(shards=2, replicas=3, topology=topology,
                                    consistency=consistency, **kw))
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


def test_ops_before_connect_rejected():
    dep = Deployment(DeploymentSpec(shards=1, replicas=1))
    dep.start()
    client = dep.client("c")
    fut = client.get("k")
    with pytest.raises(BespoError):
        dep.sim.run_future(fut)


def test_unknown_partitioner_rejected():
    dep = Deployment(DeploymentSpec(shards=1, replicas=1))
    with pytest.raises(BespoError):
        dep.client("c", partitioner="rendezvous")


def test_routing_writes_to_head_reads_to_tail_ms_sc():
    dep, client = build()
    shard = client.shard_for("key")
    assert client._route(shard, "put", None, None) == shard.head.controlet
    assert client._route(shard, "get", None, None) == shard.tail.controlet
    # relaxed read may hit any replica
    seen = {client._route(shard, "get", "eventual", None) for _ in range(50)}
    assert len(seen) > 1


def test_routing_ms_ec_reads_spread():
    dep, client = build(consistency=Consistency.EVENTUAL)
    shard = client.shard_for("key")
    seen = {client._route(shard, "get", None, None) for _ in range(50)}
    assert seen == set(shard.controlets())
    assert client._route(shard, "put", None, None) == shard.head.controlet


def test_routing_aa_spreads_everything():
    dep, client = build(topology=Topology.AA, consistency=Consistency.EVENTUAL)
    shard = client.shard_for("key")
    puts = {client._route(shard, "put", None, None) for _ in range(50)}
    assert len(puts) == 3


def test_prefer_kind_routing():
    dep, client = build(consistency=Consistency.EVENTUAL,
                        datalet_kinds=("ht", "lsm", "mt"))
    shard = client.shard_for("key")
    target = client._route(shard, "get", None, "lsm")
    replica = next(r for r in shard.ordered() if r.controlet == target)
    assert replica.datalet_kind == "lsm"
    # unknown kind falls back to any replica rather than failing
    assert client._route(shard, "get", None, "rocksdb") in shard.controlets()


def test_client_counts_ops_and_retries():
    dep, client = build()
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_future(client.get("k"))
    assert client.ops == 2
    before = client.retries
    # force a retry by aiming at a stale map: kill the tail and read
    dep.kill_replica(0, 2)
    dep.sim.run_until(dep.sim.now + 12.0)
    for i in range(8):  # some keys route to the repaired shard
        try:
            dep.sim.run_future(client.get(f"k{i}"))
        except KeyNotFound:
            pass
    assert client.retries >= before


def test_epoch_visible_after_connect():
    dep, client = build()
    assert client.map.epoch == dep.map.epoch


def test_auto_refresh_picks_up_new_epoch():
    dep, client = build()
    client.auto_refresh(0.5)
    epoch0 = client.map.epoch
    dep.kill_replica(0, 2)  # coordinator bumps epoch during failover
    dep.sim.run_until(dep.sim.now + 12.0)
    assert client.map.epoch > epoch0


def test_delete_table_removes_all_rows_with_mt():
    dep = Deployment(DeploymentSpec(shards=2, replicas=2, topology=Topology.MS,
                                    consistency=Consistency.EVENTUAL,
                                    datalet_kinds=("mt",)))
    dep.start()
    client = dep.client("c")
    sim = dep.sim
    sim.run_future(client.connect())
    sim.run_future(client.create_table("t"))
    for i in range(10):
        sim.run_future(client.table_put(f"k{i}", str(i), "t"))
    sim.run_until(sim.now + 1.0)
    sim.run_future(client.delete_table("t"))
    sim.run_until(sim.now + 1.0)
    from repro.errors import TableNotFound

    with pytest.raises(TableNotFound):
        sim.run_future(client.table_get("k1", "t"))
    # rows are actually gone from the engines
    total = sum(
        sum(1 for k, _ in dep.cluster.actor(r.datalet).engine.items() if k.startswith("t:"))
        for sid in dep.map.shard_ids()
        for r in dep.map.shard(sid).ordered()
    )
    assert total == 0


def test_table_cache_invalidated_on_delete():
    dep, client = build(consistency=Consistency.EVENTUAL)
    sim = dep.sim
    sim.run_future(client.connect())
    sim.run_future(client.create_table("t"))
    sim.run_future(client.table_put("a", "1", "t"))
    sim.run_future(client.delete_table("t"))
    from repro.errors import TableNotFound

    with pytest.raises(TableNotFound):
        sim.run_future(client.table_put("b", "2", "t"))
