"""Chaos engine unit tests: fault schedules, the controller, and the
history recorder (see docs/ARCHITECTURE.md "Chaos & fault injection")."""

import pytest

from repro.chaos import (
    ChaosController,
    FaultEvent,
    FaultSchedule,
    HistoryRecorder,
    fault_menu,
    random_schedule,
)
from repro.chaos.schedule import MIN_DOWNTIME
from repro.core.types import Consistency, Topology
from repro.errors import ConfigError
from repro.harness import Deployment, DeploymentSpec

HOSTS = [f"node0.{j}" for j in range(4)]


# ---------------------------------------------------------------------------
# FaultEvent / FaultSchedule
# ---------------------------------------------------------------------------
def test_fault_event_validation():
    with pytest.raises(ConfigError):
        FaultEvent(at=1.0, kind="meteor", target="node0.0")
    with pytest.raises(ConfigError):
        FaultEvent(at=-0.5, kind="crash", target="node0.0")
    with pytest.raises(ConfigError):
        FaultEvent(at=1.0, kind="partition", target="node0.0")  # no peer
    with pytest.raises(ConfigError):
        FaultEvent(at=1.0, kind="crash")  # no target
    with pytest.raises(ConfigError):
        FaultEvent(at=1.0, kind="duplicate", rate=1.0)
    with pytest.raises(ConfigError):
        FaultEvent(at=1.0, kind="slow_node", target="node0.0", factor=0.5)


def test_schedule_sorts_events_and_reports_horizon():
    sched = FaultSchedule(
        events=[
            FaultEvent(at=5.0, kind="crash", target="node0.0"),
            FaultEvent(at=1.0, kind="slow_node", target="node0.1", factor=2.0),
        ]
    )
    assert [e.at for e in sched.events] == [1.0, 5.0]
    assert sched.horizon == 5.0
    assert FaultSchedule().horizon == 0.0


def test_schedule_digest_is_content_hash():
    ev = [FaultEvent(at=1.0, kind="crash", target="node0.0")]
    assert FaultSchedule(events=list(ev)).digest() == FaultSchedule(events=list(ev)).digest()
    other = FaultSchedule(events=[FaultEvent(at=1.0, kind="crash", target="node0.1")])
    assert FaultSchedule(events=list(ev)).digest() != other.digest()


# ---------------------------------------------------------------------------
# fault menus & random schedules
# ---------------------------------------------------------------------------
def test_fault_menu_per_combo():
    # AA+SC: no partitions (write-all/read-local is not partition
    # tolerant — CAP); dup/reorder only where EC machinery absorbs them.
    assert "partition" not in fault_menu(Topology.AA, Consistency.STRONG)
    assert "partition" in fault_menu(Topology.MS, Consistency.STRONG)
    for combo in ((Topology.MS, Consistency.STRONG), (Topology.AA, Consistency.STRONG)):
        assert "duplicate" not in fault_menu(*combo)
        assert "reorder" not in fault_menu(*combo)
    for combo in ((Topology.MS, Consistency.EVENTUAL), (Topology.AA, Consistency.EVENTUAL)):
        menu = fault_menu(*combo)
        assert "duplicate" in menu and "reorder" in menu


def test_random_schedule_deterministic_per_seed():
    a = random_schedule(7, HOSTS, 20.0)
    b = random_schedule(7, HOSTS, 20.0)
    c = random_schedule(8, HOSTS, 20.0)
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()


def test_random_schedule_pairs_crash_with_late_restart():
    for seed in range(1, 8):
        sched = random_schedule(seed, HOSTS, 30.0, max_crashes=2)
        crashes = [e for e in sched.events if e.kind == "crash"]
        restarts = {e.target: e.at for e in sched.events if e.kind == "restart"}
        assert len(crashes) <= 2
        for ev in crashes:
            # downtime must exceed the sweep interval so the node is
            # replaced before it thaws (no stale-rejoin ambiguity)
            assert restarts[ev.target] - ev.at >= MIN_DOWNTIME


def test_random_schedule_respects_menu():
    sched = random_schedule(
        3, HOSTS, 40.0, topology=Topology.AA, consistency=Consistency.STRONG
    )
    kinds = {e.kind for e in sched.events}
    assert not kinds & {"partition", "heal", "duplicate", "reorder"}


def test_random_schedule_input_validation():
    with pytest.raises(ConfigError):
        random_schedule(1, ["only-one"], 10.0)
    with pytest.raises(ConfigError):
        random_schedule(1, HOSTS, 0.0)


# ---------------------------------------------------------------------------
# durable recover-restarts (crash + inside-window rejoin from disk)
# ---------------------------------------------------------------------------
def test_recover_flag_only_valid_on_restart():
    ev = FaultEvent(at=1.0, kind="restart", target="node0.0", recover=True)
    assert "recover" in ev.describe()
    with pytest.raises(ConfigError):
        FaultEvent(at=1.0, kind="crash", target="node0.0", recover=True)
    # the flag is part of schedule identity
    plain = FaultSchedule(events=[FaultEvent(at=1.0, kind="restart", target="node0.0")])
    durable = FaultSchedule(events=[ev])
    assert plain.digest() != durable.digest()


def test_fault_menu_restarts_opt_in():
    for combo in ((Topology.MS, Consistency.STRONG), (Topology.AA, Consistency.EVENTUAL)):
        assert "restart" not in fault_menu(*combo)
        assert "restart" in fault_menu(*combo, restarts=True)


def test_validate_crash_restart_pairing():
    crash = FaultEvent(at=1.0, kind="crash", target="node0.0")
    # restart without a preceding crash
    with pytest.raises(ConfigError):
        FaultSchedule(events=[FaultEvent(at=2.0, kind="restart", target="node0.0")]).validate()
    # double crash without an intervening restart
    with pytest.raises(ConfigError):
        FaultSchedule(events=[crash, FaultEvent(at=2.0, kind="crash", target="node0.0")]).validate()
    # non-positive downtime
    with pytest.raises(ConfigError):
        FaultSchedule(events=[crash, FaultEvent(at=1.0, kind="restart", target="node0.0")]).validate()


def test_validate_thaw_restart_must_exceed_detection_window():
    def sched(downtime, recover):
        return FaultSchedule(events=[
            FaultEvent(at=1.0, kind="crash", target="node0.0"),
            FaultEvent(at=1.0 + downtime, kind="restart", target="node0.0",
                       recover=recover),
        ])

    # a thaw inside the window races its own replacement: rejected
    with pytest.raises(ConfigError):
        sched(1.0, recover=False).validate()
    # ... against the *configured* window, not a hard-coded constant
    sched(1.0, recover=False).validate(failure_timeout=0.5)
    with pytest.raises(ConfigError):
        sched(6.0, recover=False).validate(failure_timeout=6.5)
    # a recover-restart inside the window is the durable fault class
    sched(1.0, recover=True).validate()


def test_random_schedule_restarts_come_back_inside_window():
    seen = 0
    for seed in range(1, 10):
        sched = random_schedule(seed, HOSTS, 30.0, restarts=True,
                                consistency=Consistency.EVENTUAL)
        sched.validate()
        last_crash = {}
        for ev in sched.events:  # events are sorted by time
            if ev.kind == "crash":
                last_crash[ev.target] = ev.at
            elif ev.kind == "restart" and ev.recover:
                seen += 1
                downtime = ev.at - last_crash[ev.target]
                assert 0.0 < downtime < MIN_DOWNTIME
    assert seen > 0  # the menu actually draws them


def test_random_schedule_downtime_follows_configured_timeout():
    """Satellite fix: the thaw-downtime floor derives from the actual
    failure_timeout, not a baked-in default."""
    big = 9.0
    for seed in range(1, 6):
        sched = random_schedule(seed, HOSTS, 40.0, failure_timeout=big)
        sched.validate(failure_timeout=big)
        last_crash = {}
        for ev in sched.events:
            if ev.kind == "crash":
                last_crash[ev.target] = ev.at
            elif ev.kind == "restart" and not ev.recover:
                assert ev.at - last_crash[ev.target] > big


# ---------------------------------------------------------------------------
# controller
# ---------------------------------------------------------------------------
def build(**kw):
    dep = Deployment(
        DeploymentSpec(shards=1, replicas=3, topology=Topology.MS,
                       consistency=Consistency.EVENTUAL, **kw)
    )
    dep.start()
    return dep


def test_controller_applies_schedule_on_the_sim_clock():
    dep = build()
    sched = FaultSchedule(
        events=[
            FaultEvent(at=0.5, kind="partition", target="node0.0", peer="node0.1", oneway=True),
            FaultEvent(at=1.0, kind="latency_spike", target="node0.1", peer="node0.2", factor=8.0),
            FaultEvent(at=1.5, kind="slow_node", target="node0.2", factor=3.0),
            FaultEvent(at=2.0, kind="duplicate", rate=0.2),
        ]
    )
    ctl = ChaosController(dep, sched)
    ctl.arm()
    dep.sim.run_until(3.0)
    assert len(ctl.applied) == 4
    net = dep.cluster.network
    assert net.is_cut("node0.0", "node0.1")
    assert not net.is_cut("node0.1", "node0.0")  # one-way: reverse open
    assert net.params.duplicate_rate == 0.2
    # every live actor now dedups repeated deliveries
    assert all(a.dedup_incoming for a in dep.cluster.actors.values())

    ctl.heal_all()
    assert not net.is_cut("node0.0", "node0.1")
    assert net.params.duplicate_rate == 0.0
    assert net.params.reorder_rate == 0.0


def test_controller_crash_and_restart_drive_failover():
    dep = build()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    dep.sim.run_future(client.put("k", "v"))
    victim = dep.map.shard("s0").ordered()[1].host
    sched = FaultSchedule(
        events=[
            FaultEvent(at=1.0, kind="crash", target=victim),
            FaultEvent(at=1.0 + MIN_DOWNTIME, kind="restart", target=victim),
        ]
    )
    ctl = ChaosController(dep, sched)
    ctl.arm()
    dep.sim.run_until(dep.sim.now + 15.0)
    assert dep.coordinator.failovers >= 1
    assert dep.cluster.is_host_alive(victim)  # restarted (and fenced out)
    assert len(dep.map.shard("s0").replicas) == 3  # replacement joined
    assert dep.sim.run_future(client.get("k")) == "v"


def test_controller_digest_reflects_applied_timeline():
    dep = build(seed=11)
    sched = FaultSchedule(events=[FaultEvent(at=0.5, kind="slow_node", target="node0.0", factor=2.0)])
    ctl = ChaosController(dep, sched)
    ctl.arm()
    dep.sim.run_until(1.0)
    dep2 = build(seed=11)
    ctl2 = ChaosController(dep2, sched)
    ctl2.arm()
    dep2.sim.run_until(1.0)
    assert ctl.digest() == ctl2.digest()


# ---------------------------------------------------------------------------
# history recorder
# ---------------------------------------------------------------------------
def test_history_recorder_stamps_and_counts():
    dep = build()
    rec = HistoryRecorder(dep.sim)
    dep.sim.run_until(1.0)
    r1 = rec.invoke("c0", "put", "k", "v")
    dep.sim.run_until(1.5)
    rec.complete(r1, "ok", attempts=3)
    r2 = rec.invoke("c0", "get", "k", None)
    rec.complete(r2, "ok", value="v")
    rec.invoke("c1", "get", "gone", None)  # left pending
    assert (r1.invoke, r1.response, r1.attempts) == (1.0, 1.5, 3)
    assert r2.result == "v"
    assert rec.counts() == {"ok": 2, "pending": 1}
    assert rec.by_key()["k"] == [r1, r2]
    assert len(rec.digest()) == 64


# ---------------------------------------------------------------------------
# client backoff (satellite: capped exponential with seeded jitter)
# ---------------------------------------------------------------------------
def test_client_backoff_exponential_capped_jittered():
    dep = build()
    client = dep.client("c0", retry_backoff=0.1, retry_backoff_cap=1.0)
    for attempt in range(12):
        expected = min(0.1 * (2 ** attempt), 1.0)
        delay = client._backoff(attempt)
        assert 0.5 * expected <= delay < 1.5 * expected
    # deep attempts stay capped
    assert client._backoff(30) < 1.5 * 1.0


def test_client_backoff_uses_named_rng_stream():
    """Same deployment seed => same jitter sequence (replay determinism)."""
    seq = []
    for _ in range(2):
        dep = build(seed=42)
        client = dep.client("c0")
        seq.append([client._backoff(a) for a in range(6)])
    assert seq[0] == seq[1]
