"""Online topology/consistency transition tests (paper §V, Fig 4)."""

import pytest

from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec


def build(topology, consistency, shards=2, replicas=3):
    dep = Deployment(
        DeploymentSpec(
            shards=shards, replicas=replicas, topology=topology, consistency=consistency
        )
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


def load(dep, client, n=20):
    futs = [client.put(f"k{i}", str(i)) for i in range(n)]
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 1.0)


TRANSITIONS = [
    (Topology.MS, Consistency.EVENTUAL, Topology.MS, Consistency.STRONG),
    (Topology.MS, Consistency.EVENTUAL, Topology.AA, Consistency.EVENTUAL),
    (Topology.MS, Consistency.EVENTUAL, Topology.AA, Consistency.STRONG),
    (Topology.AA, Consistency.EVENTUAL, Topology.MS, Consistency.EVENTUAL),
    (Topology.MS, Consistency.STRONG, Topology.MS, Consistency.EVENTUAL),
    (Topology.AA, Consistency.STRONG, Topology.AA, Consistency.EVENTUAL),
    (Topology.AA, Consistency.EVENTUAL, Topology.AA, Consistency.STRONG),
    (Topology.MS, Consistency.STRONG, Topology.AA, Consistency.EVENTUAL),
]

IDS = [f"{a.value}-{b.value}->{c.value}-{d.value}" for a, b, c, d in TRANSITIONS]


@pytest.mark.parametrize("t0,c0,t1,c1", TRANSITIONS, ids=IDS)
def test_transition_flips_map_and_preserves_data(t0, c0, t1, c1):
    dep, client = build(t0, c0)
    load(dep, client)
    old_controlets = set(dep.shard(0).controlets()) | set(dep.shard(1).controlets())
    epoch0 = dep.map.epoch
    dep.sim.run_future(dep.request_transition(t1, c1))
    dep.sim.run_until(dep.sim.now + 0.1)  # let in-flight retire messages land
    shard = dep.shard(0)
    assert shard.topology is Topology(t1)
    assert shard.consistency is Consistency(c1)
    assert dep.map.epoch > epoch0
    # all controlets are new; datalets unchanged
    assert not (set(shard.controlets()) & old_controlets)
    # old controlets are retired
    for c in old_controlets:
        assert dep.cluster.actor(c).retired
    # data written before the transition is still served
    dep.sim.run_until(dep.sim.now + 1.0)
    client2 = dep.client("c1")
    dep.sim.run_future(client2.connect())
    for i in range(0, 20, 5):
        assert dep.sim.run_future(client2.get(f"k{i}")) == str(i)


@pytest.mark.parametrize("t0,c0,t1,c1", TRANSITIONS[:4], ids=IDS[:4])
def test_writes_after_transition_follow_new_protocol(t0, c0, t1, c1):
    dep, client = build(t0, c0)
    load(dep, client, n=5)
    dep.sim.run_future(dep.request_transition(t1, c1))
    client2 = dep.client("cx")
    dep.sim.run_future(client2.connect())
    dep.sim.run_future(client2.put("post", "transition"))
    dep.sim.run_until(dep.sim.now + 2.0)
    for r in dep.shard(0).ordered():
        if client2.shard_for("post").shard_id == r.controlet.split(".")[0].lstrip("c"):
            pass  # key may live on either shard; checked below via client
    assert dep.sim.run_future(client2.get("post")) == "transition"
    if Consistency(c1) is Consistency.STRONG and Topology(t1) is Topology.MS:
        # strong: at ack time the tail datalet already has the write
        shard = client2.shard_for("post")
        assert dep.cluster.actor(shard.tail.datalet).engine.get("post") == "transition"


def test_stale_client_recovers_via_retired_errors():
    """A client that never refreshes proactively still works: its first
    op after the flip sees 'retired', refreshes, retries."""
    dep, client = build(Topology.MS, Consistency.EVENTUAL)
    load(dep, client, n=5)
    dep.sim.run_future(dep.request_transition(Topology.MS, Consistency.STRONG))
    # client still holds the old map
    assert dep.sim.run_future(client.get("k1")) == "1"
    assert client.retries >= 1  # had to bounce at least once


def test_writes_during_transition_are_not_lost():
    """§V: 'The old controlet provides the old service with no
    downtime' — a writer running across the switch loses nothing."""
    dep, client = build(Topology.MS, Consistency.EVENTUAL, shards=1)
    load(dep, client, n=5)
    outcomes = []

    def writer():
        for i in range(60):
            try:
                yield client.put(f"w{i}", str(i))
                outcomes.append(True)
            except Exception:  # noqa: BLE001
                outcomes.append(False)
            yield 0.05

    wfut = dep.sim.spawn(writer())
    tfut = dep.request_transition(Topology.MS, Consistency.STRONG)
    dep.sim.run_future(wfut)
    dep.sim.run_future(tfut)
    assert all(outcomes), f"{outcomes.count(False)} writes failed during transition"
    dep.sim.run_until(dep.sim.now + 2.0)
    # every write is present on the (new) tail
    tail_engine = dep.cluster.actor(dep.shard(0).tail.datalet).engine
    for i in range(60):
        assert tail_engine.get(f"w{i}") == str(i)


def test_gets_served_throughout_transition():
    dep, client = build(Topology.MS, Consistency.EVENTUAL, shards=1)
    load(dep, client, n=5)
    reads = []

    def reader():
        for _ in range(80):
            try:
                value = yield client.get("k1")
                reads.append(value)
            except Exception:  # noqa: BLE001
                reads.append(None)
            yield 0.05

    rfut = dep.sim.spawn(reader())
    tfut = dep.request_transition(Topology.AA, Consistency.EVENTUAL)
    dep.sim.run_future(rfut)
    dep.sim.run_future(tfut)
    assert reads.count(None) == 0
    assert set(reads) == {"1"}


def test_second_transition_rejected_while_active():
    """Exactly one of two concurrent transition requests wins; the
    other is rejected with 'transition already in progress'."""
    dep, client = build(Topology.MS, Consistency.EVENTUAL)
    f1 = dep.request_transition(Topology.MS, Consistency.STRONG)
    f2 = dep.request_transition(Topology.AA, Consistency.EVENTUAL, client_name="admin2")
    dep.sim.run_until(dep.sim.now + 30.0)
    assert f1.done and f2.done
    outcomes = []
    for f in (f1, f2):
        try:
            f.result()
            outcomes.append("ok")
        except Exception as e:  # noqa: BLE001
            assert "in progress" in str(e)
            outcomes.append("rejected")
    assert sorted(outcomes) == ["ok", "rejected"]


def test_chained_transitions_return_roundtrip():
    """MS+EC -> MS+SC -> MS+EC: two flips back to the original config."""
    dep, client = build(Topology.MS, Consistency.EVENTUAL, shards=1)
    load(dep, client, n=10)
    dep.sim.run_future(dep.request_transition(Topology.MS, Consistency.STRONG))
    dep.sim.run_until(dep.sim.now + 1.0)
    dep.sim.run_future(
        dep.request_transition(Topology.MS, Consistency.EVENTUAL, client_name="admin2")
    )
    assert dep.shard(0).consistency is Consistency.EVENTUAL
    client2 = dep.client("c2")
    dep.sim.run_future(client2.connect())
    dep.sim.run_future(client2.put("final", "state"))
    dep.sim.run_until(dep.sim.now + 1.0)
    assert dep.sim.run_future(client2.get("final")) == "state"
    assert dep.sim.run_future(client2.get("k3")) == "3"
