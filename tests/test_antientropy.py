"""Anti-entropy tests: MS+EC slaves converge after message loss."""

import pytest

from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec


def build(**kw):
    dep = Deployment(
        DeploymentSpec(shards=1, replicas=3, topology=Topology.MS,
                       consistency=Consistency.EVENTUAL, **kw)
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


def slave_engines(dep):
    shard = dep.shard(0)
    return [dep.cluster.actor(r.datalet).engine for r in shard.ordered()[1:]]


def controlet(dep, pos):
    return dep.cluster.actor(dep.shard(0).ordered()[pos].controlet)


def test_no_gaps_in_fault_free_run():
    dep, client = build()
    for i in range(50):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 1.0)
    for engine in slave_engines(dep):
        assert len(engine) == 50
    assert controlet(dep, 1).gaps_detected == 0
    assert controlet(dep, 2).gaps_detected == 0


def test_partitioned_slave_catches_up_after_heal():
    """Drop the master->slave link for a while; after healing, the gap
    repair brings the slave back to the full dataset."""
    dep, client = build()
    shard = dep.shard(0)
    master_host = shard.ordered()[0].host
    slave = shard.ordered()[2]

    for i in range(10):
        dep.sim.run_future(client.put(f"a{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 1.0)

    dep.cluster.network.partition(master_host, slave.host)
    for i in range(20):
        dep.sim.run_future(client.put(f"b{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 1.0)
    slave_engine = dep.cluster.actor(slave.datalet).engine
    assert len(slave_engine) == 10  # partitioned: missed every b-key

    dep.cluster.network.heal(master_host, slave.host)
    # new writes trigger the gap detection, then the resend repairs
    for i in range(5):
        dep.sim.run_future(client.put(f"c{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 3.0)

    assert controlet(dep, 2).gaps_detected >= 1
    assert len(slave_engine) == 35
    assert slave_engine.get("b7") == "7"
    assert slave_engine.get("c4") == "4"


def test_deep_gap_falls_back_to_snapshot():
    """A gap older than the master's retained window forces a full
    snapshot sync."""
    import repro.core.ms_ec as ms_ec

    old_limit = ms_ec.RETAIN_LIMIT
    ms_ec.RETAIN_LIMIT = 16  # shrink the window for the test
    try:
        dep, client = build()
        shard = dep.shard(0)
        master_host = shard.ordered()[0].host
        slave = shard.ordered()[1]
        dep.sim.run_future(client.put("seed", "s"))  # establish the stream
        dep.sim.run_until(dep.sim.now + 1.0)
        dep.cluster.network.partition(master_host, slave.host)
        # far more writes than the retained window holds
        for i in range(80):
            dep.sim.run_future(client.put(f"k{i:03d}", str(i)))
        dep.sim.run_until(dep.sim.now + 1.0)
        dep.cluster.network.heal(master_host, slave.host)
        for i in range(3):
            dep.sim.run_future(client.put(f"post{i}", str(i)))
        dep.sim.run_until(dep.sim.now + 3.0)
        master_ctl = controlet(dep, 0)
        assert master_ctl.snapshot_syncs_served >= 1
        slave_engine = dep.cluster.actor(slave.datalet).engine
        assert len(slave_engine) == 84  # seed + 80 + 3 post
        assert slave_engine.get("k042") == "42"
    finally:
        ms_ec.RETAIN_LIMIT = old_limit


def test_resend_window_served_without_snapshot():
    dep, client = build()
    shard = dep.shard(0)
    master_host = shard.ordered()[0].host
    slave = shard.ordered()[1]
    dep.sim.run_future(client.put("seed", "s"))  # establish the stream
    dep.sim.run_until(dep.sim.now + 1.0)
    dep.cluster.network.partition(master_host, slave.host)
    for i in range(12):  # well inside the retained window
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 1.0)
    dep.cluster.network.heal(master_host, slave.host)
    dep.sim.run_future(client.put("trigger", "x"))
    dep.sim.run_until(dep.sim.now + 3.0)
    master_ctl = controlet(dep, 0)
    assert master_ctl.resends_served >= 1
    assert master_ctl.snapshot_syncs_served == 0
    assert len(dep.cluster.actor(slave.datalet).engine) == 14


def test_duplicate_batches_are_idempotent():
    """Overlapping resends (skip >= len) must not corrupt the slave."""
    dep, client = build()
    for i in range(10):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 1.0)
    slave_ctl = controlet(dep, 1)
    # replay an old batch manually
    from repro.net.message import Message

    master = dep.shard(0).head.controlet
    dup = Message("replicate", {"master": master, "start_seq": 0,
                                "ops": [{"op": "put", "key": "k0", "val": "0"}]},
                  src=master, dst=slave_ctl.node_id)
    slave_ctl._on_replicate(dup)
    dep.sim.run_until(dep.sim.now + 1.0)
    engine = dep.cluster.actor(dep.shard(0).ordered()[1].datalet).engine
    assert len(engine) == 10 and engine.get("k0") == "0"


def test_new_master_stream_adopted_after_failover():
    """After the master dies and a slave is promoted, the remaining
    slave adopts the new master's sequence stream and keeps applying."""
    dep, client = build(standbys=1)
    for i in range(10):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 1.0)
    dep.kill_replica(0, chain_pos=0)
    dep.sim.run_until(dep.sim.now + 12.0)
    for i in range(10):
        dep.sim.run_future(client.put(f"n{i}", str(i)))
    dep.sim.run_until(dep.sim.now + 2.0)
    for r in dep.shard(0).ordered():
        engine = dep.cluster.actor(r.datalet).engine
        assert engine.get("n9") == "9", r.controlet
