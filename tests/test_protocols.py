"""Tests for the RESP and binary wire codecs."""

import pytest

from repro.errors import ProtocolError
from repro.net import resp
from repro.net.protocol import BinaryCodec, INCOMPLETE as FRAME_INCOMPLETE


# ---------------------------------------------------------------------------
# RESP encoding
# ---------------------------------------------------------------------------
def test_encode_bulk_and_null():
    assert resp.encode_bulk("hi") == b"$2\r\nhi\r\n"
    assert resp.encode_bulk(None) == b"$-1\r\n"
    assert resp.encode_bulk(b"\x00\x01") == b"$2\r\n\x00\x01\r\n"


def test_encode_command():
    assert resp.encode_command("GET", "k") == b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"


def test_encode_simple_rejects_newlines():
    with pytest.raises(ProtocolError):
        resp.encode_simple("a\nb")


# ---------------------------------------------------------------------------
# RESP parsing
# ---------------------------------------------------------------------------
def roundtrip(data):
    p = resp.RespParser()
    p.feed(data)
    return p.next_value()


def test_parse_simple_string():
    assert roundtrip(b"+OK\r\n") == "OK"


def test_parse_integer():
    assert roundtrip(b":42\r\n") == 42
    with pytest.raises(ProtocolError):
        roundtrip(b":abc\r\n")


def test_parse_error_value():
    value = roundtrip(b"-ERR nope\r\n")
    assert isinstance(value, resp.ProtocolErrorValue)
    assert str(value) == "ERR nope"


def test_parse_bulk_and_null_bulk():
    assert roundtrip(b"$3\r\nfoo\r\n") == b"foo"
    assert roundtrip(b"$-1\r\n") is None
    assert roundtrip(b"$0\r\n\r\n") == b""


def test_parse_array_nested():
    data = b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n:7\r\n"
    assert roundtrip(data) == [b"SET", b"k", 7]


def test_parse_null_inside_array():
    assert roundtrip(b"*2\r\n$-1\r\n$1\r\nx\r\n") == [None, b"x"]


def test_incremental_feed_byte_by_byte():
    p = resp.RespParser()
    data = resp.encode_command("SET", "key1", "value1")
    for i in range(len(data) - 1):
        p.feed(data[i : i + 1])
        assert p.next_value() is resp.INCOMPLETE
    p.feed(data[-1:])
    assert p.next_value() == [b"SET", b"key1", b"value1"]


def test_pipelined_values():
    p = resp.RespParser()
    p.feed(b"+OK\r\n:1\r\n$1\r\nx\r\n")
    assert p.next_value() == "OK"
    assert p.next_value() == 1
    assert p.next_value() == b"x"
    assert p.next_value() is resp.INCOMPLETE


def test_bulk_missing_terminator():
    p = resp.RespParser()
    p.feed(b"$3\r\nfooXY")
    with pytest.raises(ProtocolError):
        p.next_value()


def test_bulk_too_large_rejected():
    p = resp.RespParser(max_bulk=10)
    p.feed(b"$100\r\n")
    with pytest.raises(ProtocolError):
        p.next_value()


def test_unknown_marker():
    with pytest.raises(ProtocolError):
        roundtrip(b"?what\r\n")


def test_incomplete_is_falsy_and_distinct_from_none():
    p = resp.RespParser()
    assert not resp.INCOMPLETE
    assert p.next_value() is resp.INCOMPLETE
    p.feed(b"$-1\r\n")
    assert p.next_value() is None


# ---------------------------------------------------------------------------
# binary codec
# ---------------------------------------------------------------------------
def test_binary_roundtrip():
    codec = BinaryCodec()
    frame = {"op": "put", "key": "k", "val": "v" * 100}
    codec.feed(BinaryCodec.encode(frame))
    assert codec.next_frame() == frame


def test_binary_incremental():
    codec = BinaryCodec()
    data = BinaryCodec.encode({"op": "get", "key": "k"})
    codec.feed(data[:3])
    assert codec.next_frame() is FRAME_INCOMPLETE
    codec.feed(data[3:])
    assert codec.next_frame() == {"op": "get", "key": "k"}


def test_binary_pipelined():
    codec = BinaryCodec()
    codec.feed(BinaryCodec.encode({"a": 1}) + BinaryCodec.encode({"b": 2}))
    assert codec.next_frame() == {"a": 1}
    assert codec.next_frame() == {"b": 2}
    assert codec.next_frame() is FRAME_INCOMPLETE


def test_binary_bad_body():
    codec = BinaryCodec()
    body = b"not json"
    import struct

    codec.feed(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError):
        codec.next_frame()


def test_binary_non_object_rejected():
    codec = BinaryCodec()
    body = b"[1,2]"
    import struct

    codec.feed(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError):
        codec.next_frame()


def test_binary_oversize_frame_rejected():
    codec = BinaryCodec()
    import struct

    codec.feed(struct.pack(">I", 1 << 30))
    with pytest.raises(ProtocolError):
        codec.next_frame()
