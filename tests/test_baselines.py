"""Tests for the comparator systems (Twemproxy/Dynomite/Cassandra-like/
Voldemort-like)."""

import pytest

from repro.baselines import BaselineDeployment
from repro.errors import BespoError, KeyNotFound


def build(kind, shards=4, replicas=3, seed=0):
    dep = BaselineDeployment(kind, shards=shards, replicas=replicas, seed=seed)
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


@pytest.mark.parametrize("kind", BaselineDeployment.KINDS)
def test_put_get_roundtrip(kind):
    dep, client = build(kind)
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 0.5)
    assert dep.sim.run_future(client.get("k")) == "v"


@pytest.mark.parametrize("kind", BaselineDeployment.KINDS)
def test_get_missing(kind):
    dep, client = build(kind)
    with pytest.raises(KeyNotFound):
        dep.sim.run_future(client.get("ghost"))


@pytest.mark.parametrize("kind", BaselineDeployment.KINDS)
def test_delete(kind):
    dep, client = build(kind)
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 0.5)
    dep.sim.run_future(client.delete("k"))
    dep.sim.run_until(dep.sim.now + 0.5)
    with pytest.raises(KeyNotFound):
        dep.sim.run_future(client.get("k"))


@pytest.mark.parametrize("kind", BaselineDeployment.KINDS)
def test_no_scan_support(kind):
    """Table I: none of the comparators serve range queries here."""
    dep, client = build(kind)
    with pytest.raises(BespoError):
        dep.sim.run_future(client.scan("a", "z"))


@pytest.mark.parametrize("kind", BaselineDeployment.KINDS)
def test_preload_visible_to_reads(kind):
    dep, client = build(kind)
    dep.preload({f"k{i}": str(i) for i in range(40)})
    for i in range(0, 40, 7):
        assert dep.sim.run_future(client.get(f"k{i}")) == str(i)


def test_twemproxy_no_replication():
    """Sharding only: each key lives on exactly one backend."""
    dep, client = build("twemproxy")
    futs = [client.put(f"k{i}", "v") for i in range(30)]
    dep.sim.run_future(dep.sim.gather(futs))
    counts = [len(e) for _, e in dep.node_engines()]
    assert sum(counts) == 30  # no copies anywhere


def test_mcrouter_replicates_within_pool():
    """AllSyncRoute: the write lands on every backend of exactly one
    pool (replication, but no cross-pool copies)."""
    dep, client = build("mcrouter", shards=3, replicas=2)
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 0.5)
    holders = [n for n, e in dep.node_engines() if e.contains("k")]
    assert len(holders) == 2
    pools = {n.split(".")[0] for n in holders}
    assert len(pools) == 1  # both replicas in the same pool


def test_mcrouter_reads_spread_over_pool():
    dep, client = build("mcrouter", shards=2, replicas=3)
    dep.preload({"k": "v"})
    for _ in range(10):
        assert dep.sim.run_future(client.get("k")) == "v"


def test_dynomite_replicates_to_all_racks():
    dep, client = build("dynomite", shards=2, replicas=3)
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 0.5)
    holders = [n for n, e in dep.node_engines() if e.contains("k")]
    assert len(holders) == 3  # one replica per rack


def test_quorum_replication_factor():
    dep, client = build("cassandra", shards=6, replicas=3)
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 0.5)
    holders = [n for n, e in dep.node_engines() if e.contains("k")]
    assert len(holders) == 3


def test_quorum_any_node_coordinates():
    """CL=ONE: a read through any coordinator finds the value."""
    dep, client = build("voldemort", shards=5, replicas=3)
    dep.preload({"k": "v"})
    # hammer reads; client picks random coordinators each time
    for _ in range(10):
        assert dep.sim.run_future(client.get("k")) == "v"


def test_dynomite_conflicting_writes_may_diverge():
    """The paper's point about Dynomite (App C-C): concurrent writes to
    the same key through different racks have no global order, so
    replicas can settle on different values — unlike BESPOKV AA+EC,
    whose shared log forces convergence (test_integration_stores).
    We assert the weaker, always-true property: each replica holds one
    of the two written values (no corruption), and convergence is NOT
    guaranteed by design (we don't assert equality)."""
    dep, c1 = build("dynomite", shards=1, replicas=3, seed=11)
    c2 = dep.client("c1")
    futs = []
    for i in range(10):
        futs.append(c1.put("hot", f"a{i}"))
        futs.append(c2.put("hot", f"b{i}"))
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 1.0)
    values = {e.get("hot") for n, e in dep.node_engines() if e.contains("hot")}
    legal = {f"a{i}" for i in range(10)} | {f"b{i}" for i in range(10)}
    assert values <= legal and len(values) >= 1


def test_unknown_baseline_kind():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        BaselineDeployment("etcd")
