"""Tests for consistent hashing and range partitioning."""

import pytest

from repro.errors import ConfigError
from repro.hashing import HashRing, RangePartitioner, stable_hash


def test_stable_hash_is_stable():
    assert stable_hash("key1") == stable_hash("key1")
    assert stable_hash("key1") != stable_hash("key2")


def test_ring_lookup_deterministic():
    ring = HashRing(["a", "b", "c"])
    assert all(ring.lookup(f"k{i}") == ring.lookup(f"k{i}") for i in range(100))


def test_ring_covers_all_members():
    ring = HashRing([f"s{i}" for i in range(8)])
    owners = {ring.lookup(f"key{i}") for i in range(5000)}
    assert owners == set(ring.members)


def test_ring_balance_reasonable():
    ring = HashRing([f"s{i}" for i in range(8)], vnodes=128)
    counts = {m: 0 for m in ring.members}
    for i in range(20000):
        counts[ring.lookup(f"key{i}")] += 1
    mean = 20000 / 8
    for c in counts.values():
        assert 0.5 * mean < c < 1.7 * mean


def test_ring_minimal_disruption_on_removal():
    ring = HashRing(["a", "b", "c", "d"])
    before = {f"k{i}": ring.lookup(f"k{i}") for i in range(2000)}
    ring.remove("d")
    moved = sum(
        1 for k, owner in before.items() if owner != "d" and ring.lookup(k) != owner
    )
    assert moved == 0  # only keys owned by the removed member move


def test_ring_add_remove_membership():
    ring = HashRing()
    ring.add("a")
    assert ring.members == ["a"]
    with pytest.raises(ConfigError):
        ring.add("a")
    ring.remove("a")
    with pytest.raises(ConfigError):
        ring.remove("a")
    with pytest.raises(ConfigError):
        ring.lookup("k")


def test_ring_lookup_n_distinct_preference_list():
    ring = HashRing(["a", "b", "c", "d"])
    prefs = ring.lookup_n("somekey", 3)
    assert len(prefs) == 3 and len(set(prefs)) == 3
    assert prefs[0] == ring.lookup("somekey")


def test_ring_lookup_n_too_many():
    ring = HashRing(["a"])
    with pytest.raises(ConfigError):
        ring.lookup_n("k", 2)


def test_ring_invalid_vnodes():
    with pytest.raises(ConfigError):
        HashRing(vnodes=0)


# ---------------------------------------------------------------------------
# membership diffs and owned-range properties (online resharding relies
# on these: clients patch their ring incrementally from a diff, and the
# migration census assumes only the moved slice changes owners)
# ---------------------------------------------------------------------------
def test_ring_diff_is_exact_membership_delta():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s1", "s2", "s3", "s4"])
    assert a.diff(b) == {"added": ["s3", "s4"], "removed": ["s0"]}
    assert b.diff(a) == {"added": ["s0"], "removed": ["s3", "s4"]}
    assert a.diff(a) == {"added": [], "removed": []}


def test_ring_diff_applied_reproduces_ownership():
    a = HashRing(["s0", "s1", "s2"])
    b = HashRing(["s1", "s2", "s3"])
    d = a.diff(b)
    for sid in d["removed"]:
        a.remove(sid)
    for sid in d["added"]:
        a.add(sid)
    assert a.members == b.members
    # vnode placement is a pure function of the member name, so the
    # patched ring answers lookups identically to a fresh build
    assert all(a.lookup(f"k{i}") == b.lookup(f"k{i}") for i in range(2000))


def test_ring_add_moves_keys_only_to_new_member():
    """Owned-range property: growing the ring only moves keys *to* the
    newcomer — no key shuffles between surviving members — and the
    moved slice is roughly the newcomer's fair share."""
    ring = HashRing([f"s{i}" for i in range(4)])
    before = {f"k{i}": ring.lookup(f"k{i}") for i in range(4000)}
    ring.add("s4")
    moved = {k: ring.lookup(k) for k, owner in before.items()
             if ring.lookup(k) != owner}
    assert all(dst == "s4" for dst in moved.values())
    # fair share is 1/5 of the keyspace; allow generous slack for
    # vnode placement variance
    assert 0.05 * len(before) < len(moved) < 0.45 * len(before)


def test_ring_remove_then_readd_is_identity():
    ring = HashRing(["a", "b", "c", "d"])
    before = {f"k{i}": ring.lookup(f"k{i}") for i in range(2000)}
    ring.remove("b")
    ring.add("b")
    assert ring.members == ["a", "b", "c", "d"]
    assert all(ring.lookup(k) == owner for k, owner in before.items())


def test_ring_vnode_collision_skew_is_deterministic(monkeypatch):
    """When two vnodes hash to the same point, the loser skews one
    position — deterministically, so independently built rings still
    agree on every lookup."""
    import repro.hashing.ring as ring_mod

    def colliding_hash(key: str) -> int:
        # every vnode of every member lands on one of 4 points; keys
        # spread normally — forces the skew path on every add
        if "#" in key:
            member, i = key.split("#")
            return (int(i) % 4) * (1 << 60)
        return stable_hash(key)

    monkeypatch.setattr(ring_mod, "stable_hash", colliding_hash)
    r1 = ring_mod.HashRing(["a", "b", "c"], vnodes=8)
    r2 = ring_mod.HashRing(["a", "b", "c"], vnodes=8)
    # every vnode survives the collisions (losers skew, none dropped)
    # and the skew lands identically in independently built rings
    assert r1.members == r2.members == ["a", "b", "c"]
    assert sorted(r1._points) == sorted(r2._points)
    assert len(r1._points) == 3 * 8
    assert r1._owners == r2._owners
    keys = [f"k{i}" for i in range(500)]
    assert [r1.lookup(k) for k in keys] == [r2.lookup(k) for k in keys]


# ---------------------------------------------------------------------------
# range partitioner
# ---------------------------------------------------------------------------
def test_range_lookup_boundaries():
    p = RangePartitioner(["s0", "s1", "s2"], ["g", "n"])
    assert p.lookup("a") == "s0"
    assert p.lookup("f") == "s0"
    assert p.lookup("g") == "s1"  # boundary key goes right
    assert p.lookup("m") == "s1"
    assert p.lookup("n") == "s2"
    assert p.lookup("z") == "s2"


def test_range_shard_bounds():
    p = RangePartitioner(["s0", "s1", "s2"], ["g", "n"])
    assert p.shard_bounds("s0") == ("", "g")
    assert p.shard_bounds("s1") == ("g", "n")
    lo, hi = p.shard_bounds("s2")
    assert lo == "n" and hi > "z"


def test_range_covering_clips_subranges():
    p = RangePartitioner(["s0", "s1", "s2"], ["g", "n"])
    cov = p.covering("e", "p")
    assert cov == {"s0": ("e", "g"), "s1": ("g", "n"), "s2": ("n", "p")}


def test_range_covering_single_shard():
    p = RangePartitioner(["s0", "s1"], ["m"])
    assert p.covering("a", "b") == {"s0": ("a", "b")}


def test_range_covering_empty_interval():
    p = RangePartitioner(["s0", "s1"], ["m"])
    assert p.covering("z", "a") == {}


def test_range_invalid_config():
    with pytest.raises(ConfigError):
        RangePartitioner([], [])
    with pytest.raises(ConfigError):
        RangePartitioner(["a", "b"], [])
    with pytest.raises(ConfigError):
        RangePartitioner(["a", "b", "c"], ["n", "g"])  # unsorted
    with pytest.raises(ConfigError):
        RangePartitioner(["a", "b", "c"], ["g", "g"])  # duplicate
    with pytest.raises(ConfigError):
        RangePartitioner(["a", "b"], ["m"]).shard_bounds("zz")


def test_uniform_alpha_splits():
    p = RangePartitioner.uniform_alpha(["s0", "s1", "s2", "s3"])
    owners = {p.lookup(c) for c in "abcdefghijklmnopqrstuvwxyz"}
    assert owners == {"s0", "s1", "s2", "s3"}


def test_uniform_alpha_too_many_shards():
    with pytest.raises(ConfigError):
        RangePartitioner.uniform_alpha([f"s{i}" for i in range(30)])
