"""Tests for the bespokv CLI."""

import threading
import time

import pytest

from repro.cli import main


def test_demo_runs(capsys):
    assert main(["demo", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "deployed 2 shards" in out
    assert "failover complete" in out
    assert "final -> strong" in out


def test_bench_runs(capsys):
    rc = main([
        "bench", "--topology", "aa", "--consistency", "eventual",
        "--shards", "2", "--keys", "300", "--duration", "0.5",
        "--warmup", "0.2", "--clients", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "AA+EC" in out and "QPS" in out


def test_bench_from_config_file(tmp_path, capsys):
    cfg = tmp_path / "c1.json"
    cfg.write_text('{"topology": "ms", "consistency_model": "strong", "num_replicas": "2"}')
    rc = main(["bench", "--config", str(cfg), "--shards", "1", "--keys", "200",
               "--duration", "0.4", "--warmup", "0.1", "--clients", "3"])
    assert rc == 0
    assert "MS+SC" in capsys.readouterr().out


def test_serve_roundtrip(capsys):
    """Serve an engine briefly and hit it with the TCP client."""
    from repro.net.tcp import TcpKVClient

    result = {}

    def run_server():
        result["rc"] = main(["serve", "--engine", "mt", "--port", "0",
                             "--serve-seconds", "1.5"])

    t = threading.Thread(target=run_server)
    t.start()
    time.sleep(0.4)  # let it bind and print
    out = capsys.readouterr().out
    port = int(out.split("listening on ")[1].split("\n")[0].split(":")[1])
    with TcpKVClient("127.0.0.1", port) as kv:
        kv.put("cli", "works")
        assert kv.get("cli") == "works"
    t.join(timeout=5)
    assert result["rc"] == 0


def test_check_healthy_combo_passes(capsys):
    rc = main(["check", "--combo", "ms-sc", "--ops", "2", "--crashes", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "check: PASS" in out and "fixpoint        : yes" in out


def test_check_injected_defect_fails_and_replays(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    rc = main(["check", "--combo", "ms-sc", "--ops", "2", "--crashes", "0",
               "--inject", "early-ack", "--trace-out", str(trace)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "VIOLATION [consistency]" in out
    assert trace.exists()

    rc = main(["check", "--replay", str(trace)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "REPRODUCED" in out


def test_check_unknown_injection_rejected(capsys):
    rc = main(["check", "--inject", "bogus"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown injection" in err


def test_chaos_sanitize_soak(capsys):
    rc = main(["chaos", "--sanitize", "--combo", "ms-ec",
               "--duration", "4", "--quiesce", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "payload sanitizer: 0 violations" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
