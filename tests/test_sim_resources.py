"""Unit tests for queueing resources (Server, Pipe)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Pipe, Server, Simulator


def test_single_server_serializes_jobs():
    sim = Simulator()
    srv = Server(sim, capacity=1)
    done = []
    for i in range(3):
        srv.submit(1.0).add_done_callback(lambda f, i=i: done.append((i, sim.now)))
    sim.run()
    assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_multi_server_parallelism():
    sim = Simulator()
    srv = Server(sim, capacity=2)
    done = []
    for i in range(4):
        srv.submit(1.0).add_done_callback(lambda f, i=i: done.append((i, sim.now)))
    sim.run()
    # two at a time: finish at 1,1,2,2
    assert [t for _, t in done] == [1.0, 1.0, 2.0, 2.0]


def test_fifo_order_preserved():
    sim = Simulator()
    srv = Server(sim, capacity=1)
    order = []
    for i in range(5):
        srv.submit(0.5).add_done_callback(lambda f, i=i: order.append(i))
    sim.run()
    assert order == list(range(5))


def test_zero_demand_job_completes():
    sim = Simulator()
    srv = Server(sim, capacity=1)
    fut = srv.submit(0.0)
    sim.run()
    assert fut.done


def test_negative_demand_rejected():
    sim = Simulator()
    srv = Server(sim)
    with pytest.raises(SimulationError):
        srv.submit(-0.1)


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Server(sim, capacity=0)


def test_utilization_tracking():
    sim = Simulator()
    srv = Server(sim, capacity=2)
    srv.submit(1.0)
    srv.submit(1.0)
    sim.run()
    # 2 slot-seconds busy over 1 second elapsed with capacity 2 => 100%
    assert srv.utilization(elapsed=1.0) == pytest.approx(1.0)
    assert srv.completions == 2


def test_utilization_zero_elapsed():
    sim = Simulator()
    srv = Server(sim)
    assert srv.utilization(0.0) == 0.0


def test_queue_length_and_max_queue():
    sim = Simulator()
    srv = Server(sim, capacity=1)
    for _ in range(4):
        srv.submit(1.0)
    assert srv.queue_len == 3
    assert srv.in_service == 1
    assert srv.max_queue == 3
    sim.run()
    assert srv.queue_len == 0


def test_drain_stats_resets():
    sim = Simulator()
    srv = Server(sim)
    srv.submit(2.0)
    sim.run()
    stats = srv.drain_stats()
    assert stats["completions"] == 1
    assert stats["busy_time"] == pytest.approx(2.0)
    assert srv.completions == 0 and srv.busy_time == 0.0


def test_pipe_transfer_time_is_size_over_bandwidth():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0)
    times = []
    pipe.transfer(200).add_done_callback(lambda f: times.append(sim.now))
    sim.run()
    assert times == [pytest.approx(2.0)]


def test_pipe_serializes_transfers():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0)
    times = []
    pipe.transfer(100).add_done_callback(lambda f: times.append(sim.now))
    pipe.transfer(100).add_done_callback(lambda f: times.append(sim.now))
    sim.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]
    assert pipe.bytes_sent == 200


def test_pipe_invalid_params():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Pipe(sim, bandwidth=0)
    pipe = Pipe(sim, bandwidth=1.0)
    with pytest.raises(SimulationError):
        pipe.transfer(-1)
