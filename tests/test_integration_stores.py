"""Integration tests: client -> controlets -> datalets for all four
topology/consistency combinations (paper §IV)."""

import pytest

from repro.core.types import Consistency, Topology
from repro.errors import KeyNotFound
from repro.harness import Deployment, DeploymentSpec

COMBOS = [
    (Topology.MS, Consistency.STRONG),
    (Topology.MS, Consistency.EVENTUAL),
    (Topology.AA, Consistency.STRONG),
    (Topology.AA, Consistency.EVENTUAL),
]

COMBO_IDS = ["MS+SC", "MS+EC", "AA+SC", "AA+EC"]


def build(topology, consistency, shards=2, replicas=3, **kw):
    spec = DeploymentSpec(
        shards=shards, replicas=replicas, topology=topology, consistency=consistency, **kw
    )
    dep = Deployment(spec)
    dep.start()
    client = dep.client("client0")
    dep.sim.run_future(client.connect())
    return dep, client


@pytest.mark.parametrize("topology,consistency", COMBOS, ids=COMBO_IDS)
def test_put_get_roundtrip(topology, consistency):
    dep, client = build(topology, consistency)
    dep.sim.run_future(client.put("alpha", "1"))
    # EC makes no read-your-writes promise against an arbitrary replica:
    # let async propagation settle before reading.
    if consistency is Consistency.EVENTUAL:
        dep.sim.run_until(dep.sim.now + 1.0)
    assert dep.sim.run_future(client.get("alpha")) == "1"


@pytest.mark.parametrize("topology,consistency", COMBOS, ids=COMBO_IDS)
def test_overwrite_visible(topology, consistency):
    dep, client = build(topology, consistency)
    dep.sim.run_future(client.put("k", "v1"))
    dep.sim.run_future(client.put("k", "v2"))
    # EC: allow propagation to settle so any-replica reads see v2
    dep.sim.run_until(dep.sim.now + 1.0)
    for _ in range(6):  # random replica choice: sample several reads
        assert dep.sim.run_future(client.get("k")) == "v2"


@pytest.mark.parametrize("topology,consistency", COMBOS, ids=COMBO_IDS)
def test_delete_then_missing(topology, consistency):
    dep, client = build(topology, consistency)
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_future(client.delete("k"))
    dep.sim.run_until(dep.sim.now + 1.0)
    with pytest.raises(KeyNotFound):
        dep.sim.run_future(client.get("k"))


@pytest.mark.parametrize("topology,consistency", COMBOS, ids=COMBO_IDS)
def test_get_missing_key(topology, consistency):
    dep, client = build(topology, consistency)
    with pytest.raises(KeyNotFound):
        dep.sim.run_future(client.get("never-written"))


@pytest.mark.parametrize("topology,consistency", COMBOS, ids=COMBO_IDS)
def test_many_keys_across_shards(topology, consistency):
    dep, client = build(topology, consistency, shards=4)
    n = 60
    futs = [client.put(f"key{i}", f"val{i}") for i in range(n)]
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 1.0)
    for i in range(0, n, 7):
        assert dep.sim.run_future(client.get(f"key{i}")) == f"val{i}"
    # all four shards got some data
    shard_hits = {client.shard_for(f"key{i}").shard_id for i in range(n)}
    assert len(shard_hits) == 4


@pytest.mark.parametrize("topology,consistency", COMBOS, ids=COMBO_IDS)
def test_replication_reaches_every_datalet(topology, consistency):
    """After quiescence every replica datalet holds the written data."""
    dep, client = build(topology, consistency, shards=1)
    futs = [client.put(f"k{i}", str(i)) for i in range(20)]
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 2.0)
    for replica in dep.shard(0).ordered():
        engine = dep.cluster.actor(replica.datalet).engine
        assert len(engine) == 20, f"replica {replica.datalet} incomplete"
        assert engine.get("k7") == "7"


def test_ms_sc_chain_write_order():
    """Strong reads from the tail observe only fully replicated data:
    the moment a put is acked, the tail datalet already has it."""
    dep, client = build(Topology.MS, Consistency.STRONG, shards=1)
    dep.sim.run_future(client.put("k", "v"))
    tail = dep.shard(0).tail
    assert dep.cluster.actor(tail.datalet).engine.get("k") == "v"


def test_ms_ec_master_acks_before_slaves():
    """Eventual mode: the ack can precede slave application."""
    dep, client = build(Topology.MS, Consistency.EVENTUAL, shards=1)
    dep.sim.run_future(client.put("k", "v"))
    head = dep.shard(0).head
    assert dep.cluster.actor(head.datalet).engine.get("k") == "v"
    # slaves catch up strictly later (flush interval + network)
    dep.sim.run_until(dep.sim.now + 1.0)
    for r in dep.shard(0).ordered():
        assert dep.cluster.actor(r.datalet).engine.get("k") == "v"


def test_aa_ec_concurrent_writers_converge():
    """Two clients hammer the same key via different actives; after the
    shared-log replay quiesces, every datalet agrees on one value (the
    log's total order)."""
    dep, c1 = build(Topology.AA, Consistency.EVENTUAL, shards=1)
    c2 = dep.client("client1")
    dep.sim.run_future(c2.connect())
    futs = []
    for i in range(15):
        futs.append(c1.put("hot", f"a{i}"))
        futs.append(c2.put("hot", f"b{i}"))
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 3.0)
    values = {
        dep.cluster.actor(r.datalet).engine.get("hot") for r in dep.shard(0).ordered()
    }
    assert len(values) == 1, f"replicas diverged: {values}"


def test_aa_sc_serializes_hot_key():
    """With locking, concurrent writes to one key all land and every
    replica ends at the same value immediately after the last ack."""
    dep, c1 = build(Topology.AA, Consistency.STRONG, shards=1)
    c2 = dep.client("client1")
    dep.sim.run_future(c2.connect())
    futs = [c1.put("hot", f"x{i}") for i in range(10)]
    futs += [c2.put("hot", f"y{i}") for i in range(10)]
    dep.sim.run_future(dep.sim.gather(futs))
    values = {
        dep.cluster.actor(r.datalet).engine.get("hot") for r in dep.shard(0).ordered()
    }
    assert len(values) == 1


def test_per_request_consistency_relaxed_get():
    """§IV-C: an 'eventual' GET against an MS+SC store may hit any
    replica — exercised by checking it succeeds and returns the value."""
    dep, client = build(Topology.MS, Consistency.STRONG, shards=1)
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    for _ in range(5):
        assert dep.sim.run_future(client.get("k", consistency="eventual")) == "v"


def test_redirect_heals_stale_routing():
    """A request sent to the wrong replica is redirected, not dropped."""
    dep, client = build(Topology.MS, Consistency.STRONG, shards=1)
    dep.sim.run_future(client.put("k", "v"))
    # aim a GET directly at the head (wrong: strong reads go to tail)
    head = dep.shard(0).head.controlet
    resp = dep.sim.run_future(client.port.request(head, "get", {"key": "k"}))
    assert resp.type == "error" and resp.payload["error"] == "redirect"
    assert resp.payload["to"] == dep.shard(0).tail.controlet


def test_table_api_roundtrip():
    dep, client = build(Topology.MS, Consistency.EVENTUAL, shards=2)
    sim = dep.sim
    sim.run_future(client.create_table("users"))
    sim.run_future(client.table_put("u1", "alice", "users"))
    # EC: let async propagation settle before reading an arbitrary replica
    sim.run_until(sim.now + 1.0)
    assert sim.run_future(client.table_get("u1", "users")) == "alice"
    sim.run_future(client.table_del("u1", "users"))
    sim.run_until(sim.now + 1.0)
    with pytest.raises(KeyNotFound):
        sim.run_future(client.table_get("u1", "users"))


def test_table_missing_rejected():
    from repro.errors import TableNotFound

    dep, client = build(Topology.MS, Consistency.EVENTUAL)
    with pytest.raises(TableNotFound):
        dep.sim.run_future(client.table_put("k", "v", "ghost"))


def test_scan_range_partitioned_mt():
    """Range query service (§IV-B): tMT datalets + range partitioner."""
    dep = Deployment(
        DeploymentSpec(
            shards=3,
            replicas=3,
            topology=Topology.MS,
            consistency=Consistency.EVENTUAL,
            datalet_kinds=("mt",),
            partitioner="range",
        )
    )
    dep.start()
    client = dep.client("c")
    dep.sim.run_future(client.connect())
    import random

    rng = random.Random(7)
    keys = [f"{c}{i:02d}" for c in "aghpz" for i in range(10)]
    rng.shuffle(keys)
    futs = [client.put(k, k.upper()) for k in keys]
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 1.0)
    result = dep.sim.run_future(client.scan("g00", "p05"))
    expect = sorted((k, k.upper()) for k in keys if "g00" <= k < "p05")
    assert result == expect
    # cross-shard: the range spans more than one shard
    assert len({client.shard_for(k).shard_id for k, _ in expect}) > 1


def test_scan_limit_applied_after_merge():
    dep = Deployment(
        DeploymentSpec(
            shards=2,
            replicas=2,
            topology=Topology.MS,
            consistency=Consistency.EVENTUAL,
            datalet_kinds=("mt",),
            partitioner="range",
        )
    )
    dep.start()
    client = dep.client("c")
    dep.sim.run_future(client.connect())
    futs = [client.put(f"k{i:03d}", str(i)) for i in range(40)]
    dep.sim.run_future(dep.sim.gather(futs))
    dep.sim.run_until(dep.sim.now + 1.0)
    out = dep.sim.run_future(client.scan("k000", "k999", limit=10))
    assert [k for k, _ in out] == [f"k{i:03d}" for i in range(10)]


def test_polyglot_persistence_prefer_kind():
    """§IV-D: replicas on different engines; reads can pin a kind."""
    dep = Deployment(
        DeploymentSpec(
            shards=1,
            replicas=3,
            topology=Topology.MS,
            consistency=Consistency.EVENTUAL,
            datalet_kinds=("lsm", "mt", "log"),
        )
    )
    dep.start()
    client = dep.client("c")
    dep.sim.run_future(client.connect())
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    kinds = {r.datalet_kind for r in dep.shard(0).ordered()}
    assert kinds == {"lsm", "mt", "log"}
    for kind in kinds:
        assert dep.sim.run_future(client.get("k", prefer_kind=kind)) == "v"


def test_heartbeats_flow_to_coordinator():
    dep, client = build(Topology.MS, Consistency.EVENTUAL, shards=1)
    dep.sim.run_until(5.0)
    seen = dep.coordinator._last_seen
    for r in dep.shard(0).ordered():
        assert seen[r.controlet] > 0.0
