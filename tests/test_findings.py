"""Edge cases of the shared suppression plumbing (findings.py +
``# lint: allow[...]`` pragmas + waiver tables).

The basics — JSON envelope, GitHub annotations, wildcard pragmas — are
pinned in ``test_lint.py``; this file covers the corners that bit or
nearly bit: pragmas interacting with decorated defs (findings anchor at
the ``def`` line, not the decorator), stacked same-line/line-above
pragmas, and waiver matching by (class, rule) with combo-named
conditions riding into the audit message.
"""

import json

from repro.analysis import Finding, findings_to_json, format_findings
from repro.analysis import format_github, summarize
from repro.analysis.commitpoints import Waiver
from repro.analysis.flow import analyze_flow_sources
from repro.analysis.lint import _parse_pragmas, lint_source


# ---------------------------------------------------------------------------
# Finding rendering
# ---------------------------------------------------------------------------
def test_format_tags_disposition():
    loud = Finding(path="a.py", line=3, rule="r", message="m")
    quiet = Finding(path="a.py", line=3, rule="r", message="m",
                    suppressed=True)
    warn = Finding(path="a.py", line=3, rule="r", message="m",
                   severity="warning")
    assert "error:" in loud.format()
    assert "allowed:" in quiet.format()  # suppressed outranks severity
    assert "warning:" in warn.format()


def test_format_findings_sorts_stably():
    fs = [
        Finding(path="b.py", line=1, rule="r", message="m"),
        Finding(path="a.py", line=9, rule="z", message="m"),
        Finding(path="a.py", line=9, rule="a", message="m"),
    ]
    lines = format_findings(fs).splitlines()
    assert lines[0].startswith("a.py:9: [a]")
    assert lines[1].startswith("a.py:9: [z]")
    assert lines[2].startswith("b.py:1: [r]")


def test_github_annotation_escapes_carriage_returns():
    f = Finding(path="a.py", line=1, rule="r", message="bad\rthing")
    out = format_github([f])
    assert "\r" not in out and "%0D" in out


def test_summarize_counts_by_disposition():
    fs = [
        Finding(path="a.py", line=1, rule="r", message="m"),
        Finding(path="a.py", line=2, rule="r", message="m",
                severity="warning"),
        Finding(path="a.py", line=3, rule="r", message="m",
                severity="warning", suppressed=True),
    ]
    assert summarize(fs) == {"errors": 1, "warnings": 1, "suppressed": 1}


def test_json_envelope_keeps_suppressed_with_flag():
    fs = [Finding(path="a.py", line=1, rule="r", message="m",
                  suppressed=True)]
    doc = json.loads(findings_to_json(fs))
    assert doc["findings"][0]["suppressed"] is True
    assert doc["summary"] == {"errors": 0, "warnings": 0, "suppressed": 1}


# ---------------------------------------------------------------------------
# pragmas on decorated defs
# ---------------------------------------------------------------------------
# The override finding anchors at the `def` line (FunctionDef.lineno),
# so with a decorator in between the pragma belongs ON the decorator
# line (= def line - 1) — a pragma above the decorator is two lines
# away and must NOT suppress, or suppression would leak onto whatever
# def follows a stale comment.
_DECORATED = '''\
class RingControlet:
    def __init__(self):
        self.shard = None
        self.config_epoch = 0

    {above_decorator}
    @classmethod_like
    {on_decorator_suffix}def _on_config_update(self, msg):
        self.shard = msg.payload["shard"]  # lint: allow[ring-epoch]
'''


def _decorated_src(pragma_on_decorator: bool):
    if pragma_on_decorator:
        return _DECORATED.format(
            above_decorator="# (no pragma here)",
            on_decorator_suffix="# lint: allow[ring-epoch]\n    ")
    return _DECORATED.format(
        above_decorator="# lint: allow[ring-epoch]",
        on_decorator_suffix="")


def test_pragma_on_decorator_line_suppresses_def_finding():
    findings = analyze_flow_sources(
        [("ring.py", _decorated_src(pragma_on_decorator=True))])
    hits = [f for f in findings if f.rule == "ring-epoch"]
    assert hits and all(f.suppressed for f in hits), (
        "\n".join(f.format() for f in findings))


def test_pragma_above_decorator_does_not_reach_the_def():
    findings = analyze_flow_sources(
        [("ring.py", _decorated_src(pragma_on_decorator=False))])
    loud = [f for f in findings
            if f.rule == "ring-epoch" and not f.suppressed]
    assert loud, "a pragma two lines above the def must not suppress"


# ---------------------------------------------------------------------------
# stacked suppressions
# ---------------------------------------------------------------------------
def test_stacked_pragma_lines_union_per_line():
    src = (
        "# lint: allow[rule-a]\n"
        "x = 1  # lint: allow[rule-b, rule-c]\n"
    )
    pragmas = _parse_pragmas(src)
    assert pragmas[1] == {"rule-a"}
    assert pragmas[2] == {"rule-b", "rule-c"}


def test_same_line_and_line_above_pragmas_both_apply():
    # two wallclock calls on one line, suppressed by a comma pragma on
    # the line above AND one trailing — either alone would do; stacked
    # they must not cancel each other
    src = (
        "import time\n"
        "# lint: allow[wallclock]\n"
        "a = time.time()  # lint: allow[wallclock]\n"
        "b = time.time()\n"
        "\n"
        "c = time.time()\n"
    )
    findings = lint_source(src, "core/x.py")
    wall = [f for f in findings if f.rule == "wallclock"]
    assert len(wall) == 3
    by_line = {f.line: f.suppressed for f in wall}
    assert by_line[3] is True  # covered twice, still just suppressed
    # a trailing pragma doubles as a line-above pragma for the next
    # line — that is the documented reach, pinned here
    assert by_line[4] is True
    assert by_line[6] is False  # two lines past the stack: loud again


def test_stacked_distinct_rules_suppress_independently():
    # line above allows one rule, trailing pragma a different one: a
    # finding for either is suppressed, any third rule stays loud
    src = (
        "import time, random\n"
        "# lint: allow[global-rng]\n"
        "a = (time.time(), random.random())  # lint: allow[wallclock]\n"
    )
    findings = lint_source(src, "core/x.py")
    disposition = {f.rule: f.suppressed for f in findings}
    assert disposition.get("wallclock") is True
    assert disposition.get("global-rng") is True


# ---------------------------------------------------------------------------
# combo-named waivers
# ---------------------------------------------------------------------------
_UNFENCED = '''\
class RingControlet:
    def __init__(self):
        self.shard = None
        self.config_epoch = 0

    def _on_config_update(self, msg):
        self.shard = msg.payload["shard"]
'''


def test_combo_named_waiver_matches_by_class_and_rule():
    waiver = Waiver(cls="RingControlet", rule="ring-epoch",
                    condition="combo ms-ec, wal_sync_every=1",
                    reason="rig pins a single epoch")
    findings = analyze_flow_sources([("ring.py", _UNFENCED)],
                                    waivers=(waiver,))
    hits = [f for f in findings if f.rule == "ring-epoch"]
    assert hits and all(f.suppressed for f in hits)
    # the combo condition is auditable in --show-suppressed output
    assert all("combo ms-ec, wal_sync_every=1" in f.message for f in hits)
    assert all("rig pins a single epoch" in f.message for f in hits)


def test_waiver_wrong_rule_same_class_stays_loud():
    waiver = Waiver(cls="RingControlet", rule="pump-leak",
                    condition="combo ms-ec, always", reason="n/a")
    findings = analyze_flow_sources([("ring.py", _UNFENCED)],
                                    waivers=(waiver,))
    assert [f for f in findings
            if f.rule == "ring-epoch" and not f.suppressed]


def test_waiver_and_pragma_stack_without_conflict():
    # a site covered by BOTH a waiver and a pragma stays suppressed and
    # keeps the waiver's audit suffix
    src = _UNFENCED.replace(
        '        self.shard = msg.payload["shard"]',
        '        self.shard = msg.payload["shard"]'
        '  # lint: allow[ring-epoch]')
    waiver = Waiver(cls="RingControlet", rule="ring-epoch",
                    condition="combo hybrid, always", reason="belt and braces")
    findings = analyze_flow_sources([("ring.py", src)], waivers=(waiver,))
    hits = [f for f in findings if f.rule == "ring-epoch"]
    assert hits and all(f.suppressed for f in hits)
    assert all("combo hybrid, always" in f.message for f in hits)
