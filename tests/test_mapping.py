"""Tests for the N:1 controlet:datalet mapping (split placement)."""

import pytest

from repro.core.types import Consistency, Topology
from repro.errors import ConfigError
from repro.harness import Deployment, DeploymentSpec


def build_split(controlet_hosts=2, **kw):
    dep = Deployment(
        DeploymentSpec(
            shards=2, replicas=3,
            topology=kw.pop("topology", Topology.MS),
            consistency=kw.pop("consistency", Consistency.EVENTUAL),
            controlet_hosts=controlet_hosts, **kw,
        )
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    return dep, client


def test_controlets_packed_on_dedicated_hosts():
    dep, client = build_split(controlet_hosts=2)
    ctl_hosts = {dep.cluster.host_of(r.controlet)
                 for sid in dep.map.shard_ids()
                 for r in dep.map.shard(sid).ordered()}
    assert ctl_hosts == {"ctl0", "ctl1"}  # 6 controlets on 2 hosts
    # datalets keep their own hosts
    data_hosts = {dep.cluster.host_of(r.datalet)
                  for sid in dep.map.shard_ids()
                  for r in dep.map.shard(sid).ordered()}
    assert len(data_hosts) == 6
    assert not (ctl_hosts & data_hosts)


def test_split_placement_serves_requests():
    dep, client = build_split()
    dep.sim.run_future(client.put("k", "v"))
    dep.sim.run_until(dep.sim.now + 1.0)
    assert dep.sim.run_future(client.get("k")) == "v"


def test_split_placement_strong_consistency_end_to_end():
    dep, client = build_split(consistency=Consistency.STRONG)
    dep.sim.run_future(client.put("k", "v"))
    shard = client.shard_for("k")
    assert dep.cluster.actor(shard.tail.datalet).engine.get("k") == "v"


def test_datalet_failure_detected_and_repaired():
    """Killing a datalet's host leaves the (remote) controlet alive;
    the controlet's strikes report the failure and the coordinator
    repairs the shard + retires the orphan."""
    dep, client = build_split(consistency=Consistency.STRONG)
    for i in range(10):
        dep.sim.run_future(client.put(f"k{i}", str(i)))
    shard0 = dep.shard(0)
    victim = shard0.head  # head datalet dies, controlet survives
    dep.cluster.kill_host(victim.host)

    # keep writing so the head controlet accumulates datalet strikes
    def writer():
        for i in range(60):
            try:
                yield client.put(f"w{i}", str(i))
            except Exception:  # noqa: BLE001
                pass
            yield 0.25

    dep.sim.run_future(dep.sim.spawn(writer()))
    dep.sim.run_until(dep.sim.now + 10.0)
    shard = dep.shard(0)
    assert victim.controlet not in shard.controlets()
    orphan = dep.cluster.actor(victim.controlet)
    assert orphan.retired
    # shard still serves strongly-consistent traffic
    dep.sim.run_future(client.put("post", "repair"))
    assert dep.sim.run_future(client.get("post")) == "repair"


def test_invalid_controlet_hosts():
    with pytest.raises(ConfigError):
        DeploymentSpec(controlet_hosts=0)


def test_colocated_default_unchanged():
    dep = Deployment(DeploymentSpec(shards=1, replicas=2))
    for r in dep.shard(0).ordered():
        assert dep.cluster.host_of(r.controlet) == dep.cluster.host_of(r.datalet)
        assert dep.cluster.actor(r.controlet).datalet_colocated
