"""Recovery-aware model checking: crash is no longer a leaf.

These tests cover the restart half of the durability analysis layer:
bounded crash+restart interleavings run the real
``Deployment.recover_host`` (WAL replay + rejoin) inside exploration,
durable on-disk state is folded into the state fingerprint, and a
recovery oracle judges post-recovery replicas under the static
commit-point contract from ``repro.analysis.commitpoints``.

The static half of the same seeded defect lives in
``test_commitpoints.py``.
"""

import json

import pytest

from repro.analysis.explore import CounterTrace, explore, replay_trace
from repro.analysis.statespace import CheckerRun, CheckScenario
from repro.analysis.summaries import build_summaries
from repro.errors import BespoError


@pytest.fixture(scope="module")
def summaries():
    return build_summaries()


# ---------------------------------------------------------------------------
# scenario plumbing
# ---------------------------------------------------------------------------
def test_restart_scenario_round_trips_through_dict():
    s = CheckScenario(combo="ms-ec", nodes=2, ops_per_client=1,
                      crashes=1, restarts=1, durable=True,
                      wal_sync_every=4, durable_loss="all",
                      advance_budget=6)
    assert CheckScenario.from_dict(s.to_dict()) == s
    assert "restarts=1" in s.label()
    assert "wal_sync_every=4" in s.label()


def test_restarts_require_durable():
    with pytest.raises(BespoError):
        CheckerRun(CheckScenario(restarts=1))


# ---------------------------------------------------------------------------
# durable state is part of the fingerprint
# ---------------------------------------------------------------------------
def _booted(combo="ms-ec"):
    run = CheckerRun(CheckScenario(
        combo=combo, nodes=2, ops_per_client=1,
        crashes=1, restarts=1, durable=True, advance_budget=6,
    ))
    run.boot()
    return run


def test_identical_durable_runs_share_fingerprint():
    a = _booted()
    b = _booted()
    assert a.cluster._durable, "durable scenario booted without stores"
    assert a.fingerprint() == b.fingerprint()


def test_unsynced_append_diverges_fingerprint():
    """Two states that agree on every actor but differ in what reached
    disk have different recoveries ahead of them — they must not merge."""
    a = _booted()
    b = _booted()
    host = sorted(b.cluster._durable)[0]
    store = b.cluster._durable[host]
    store.file(sorted(store.files())[0]).append(b"ghost-record")
    assert a.fingerprint() != b.fingerprint()


def test_sync_watermark_diverges_fingerprint():
    """Same bytes on disk, different fsync watermark: a crash now loses
    different suffixes, so the states must stay distinct."""
    a = _booted()
    b = _booted()
    for run in (a, b):
        host = sorted(run.cluster._durable)[0]
        store = run.cluster._durable[host]
        store.file(sorted(store.files())[0]).append(b"tail-record")
    host = sorted(b.cluster._durable)[0]
    store = b.cluster._durable[host]
    store.file(sorted(store.files())[0]).sync()
    assert a.fingerprint() != b.fingerprint()


# ---------------------------------------------------------------------------
# healthy builds close with restarts in scope
# ---------------------------------------------------------------------------
def _restart_scenario(combo, **kw):
    base = dict(combo=combo, nodes=2, ops_per_client=1,
                crashes=1, restarts=1, durable=True, advance_budget=6)
    base.update(kw)
    return CheckScenario(**base)


@pytest.mark.parametrize("combo", ["ms-ec", "aa-ec"])
def test_healthy_restart_exploration_closes(summaries, combo):
    result = explore(_restart_scenario(combo), summaries=summaries)
    assert result.ok, result.describe()
    assert result.fixpoint, result.describe()
    assert result.states > 0


def test_ms_sc_restart_closes_no_rejoin_livelock(summaries):
    """Regression for the head-restart-in-place livelock: before the
    fix, a restarted head re-entering the chain inside the detection
    window left the tail's sync pull armed at its own upstream and
    chain_puts bounced forever — exploration never reached a fixpoint."""
    result = explore(
        _restart_scenario("ms-sc"), max_states=20000, summaries=summaries,
    )
    assert result.ok, result.describe()
    assert result.fixpoint, result.describe()


# ---------------------------------------------------------------------------
# seeded must-fail: ack before fsync in a STRONG combo
# ---------------------------------------------------------------------------
def test_unsynced_ack_yields_replayable_recovery_counterexample(summaries):
    """The dynamic half of the seeded defect: an MS+SC head that acks
    before its datalet WAL append is synced.  A crash+restart
    interleaving must surface a settled write lost across recovery, and
    the counterexample must replay deterministically."""
    scenario = CheckScenario(
        combo="ms-sc", nodes=2, ops_per_client=1,
        crashes=2, restarts=2, durable=True, advance_budget=6,
        inject="unsynced-ack",
    )
    result = explore(scenario, summaries=summaries)
    assert not result.ok, result.describe()
    ce = result.counterexample
    assert ce.kind == "recovery", ce.violation
    assert "recovery" in ce.violation
    assert ce.decisions

    # round-trips through the JSON wire format (`repro check --save`)
    rt = CounterTrace.from_json(ce.to_json())
    assert rt == ce
    assert json.loads(ce.to_json())["schema"] == "repro.check.trace/1"

    replay = replay_trace(rt)
    assert replay.reproduced, replay.describe()
    assert replay.violation == ce.violation
