"""Tests for the static commit-point analyzer (ack vs durable effects).

The analyzer is half of the durability static-analysis layer: it proves
(or waives, via the machine-readable per-combo contract) that no write
path acks the client before a durable or awaited-replication effect.
The other half — the recovery-aware model checker — is exercised in
``test_model_checker_restart.py``; the seeded ``unsynced-ack`` defect
must be caught by *both* halves.
"""

from pathlib import Path

import pytest

from repro.analysis import package_root, run_lint
from repro.analysis.commitpoints import (
    ALL_WAIVERS,
    CONTRACTS,
    ack_durable_for,
    analyze_sources,
    analyze_tree,
    contract_for,
)

COMBOS = ("ms-sc", "ms-ec", "aa-sc", "aa-ec", "hybrid")


def _read(rel: str):
    p = package_root() / rel
    return (rel, p.read_text())


# ---------------------------------------------------------------------------
# the contract table
# ---------------------------------------------------------------------------
def test_contract_table_covers_every_combo():
    assert {c.combo for c in CONTRACTS} == set(COMBOS)
    for combo in COMBOS:
        c = contract_for(combo)
        assert c.combo == combo
        assert c.ack_point and c.ack_durable_when


def test_unknown_combo_raises():
    with pytest.raises(KeyError):
        contract_for("ms-xx")
    with pytest.raises(KeyError):
        ack_durable_for("nope")


def test_every_waiver_names_combo_and_config():
    """Acceptance criterion: every suppression names the combo and the
    configuration that makes the pattern legal."""
    assert ALL_WAIVERS, "the contract table lost its waivers"
    for w in ALL_WAIVERS:
        assert "combo " in w.condition, w
        assert any(combo in w.condition for combo in COMBOS), w
        assert "wal_sync_every" in w.condition or "always" in w.condition, w
        assert w.cls and w.rule and w.reason


def test_ack_durable_truth_table():
    # the single conditional contract is MS+EC group commit
    for combo in ("ms-sc", "aa-sc", "aa-ec", "hybrid"):
        assert ack_durable_for(combo, 1)
        assert ack_durable_for(combo, 8)
    assert ack_durable_for("ms-ec", 1)
    assert not ack_durable_for("ms-ec", 2)
    assert not ack_durable_for("ms-ec", 64)


def test_contract_matches_runner_consumption():
    """The chaos runner derives its combo key as f"{topology}-{sc|ec}";
    each such key must resolve to a contract."""
    for topo in ("ms", "aa"):
        for cons in ("sc", "ec"):
            assert contract_for(f"{topo}-{cons}") is not None


# ---------------------------------------------------------------------------
# tree analysis: the shipped protocol code is contract-clean
# ---------------------------------------------------------------------------
def test_tree_has_no_unsuppressed_findings():
    findings = analyze_tree(package_root())
    unsuppressed = [f for f in findings if not f.suppressed]
    assert unsuppressed == [], "\n".join(f.describe() for f in unsuppressed)


def test_tree_suppressions_are_attributed():
    """Every suppressed finding is either a line pragma on a
    buffer-catchup ack or a contract waiver whose text names the combo
    and condition."""
    findings = analyze_tree(package_root())
    assert findings, "analyzer saw no write paths at all"
    for f in findings:
        assert f.suppressed
        assert f.rule in ("ack-before-durable", "ack-before-replication")
        if "contract waiver" in f.message:
            assert "combo " in f.message


def test_run_lint_includes_commitpoint_pass():
    findings = run_lint()
    assert any(
        f.rule in ("ack-before-durable", "ack-before-replication")
        for f in findings
    )
    errors = [f for f in findings if not f.suppressed and f.severity == "error"]
    assert errors == [], "\n".join(f.describe() for f in errors)


# ---------------------------------------------------------------------------
# seeded must-fail: the injected defects are flagged statically
# ---------------------------------------------------------------------------
INJECTION_SOURCES = [
    "core/controlet.py",
    "core/request.py",
    "core/ms_sc.py",
    "analysis/statespace.py",
]


def test_unsynced_ack_injection_is_flagged():
    """The same defect the recovery-aware checker catches dynamically
    (``repro check --restart --inject unsynced-ack``) must be flagged
    by the static pass: the deferred timer apply leaves the ack with no
    durable effect before it."""
    findings = analyze_sources([_read(rel) for rel in INJECTION_SOURCES])
    hits = [
        f for f in findings
        if not f.suppressed and f.rule == "ack-before-durable"
        and "UnsyncedAckMSStrongControlet" in f.message
    ]
    assert hits, "\n".join(f.describe() for f in findings)


def test_early_ack_injection_is_flagged():
    findings = analyze_sources([_read(rel) for rel in INJECTION_SOURCES])
    hits = [
        f for f in findings
        if not f.suppressed
        and "EarlyAckMSStrongControlet" in f.message
    ]
    assert hits, "\n".join(f.describe() for f in findings)


def test_healthy_chain_is_not_flagged_by_source_analysis():
    """The real MSStrongControlet write path stays clean under the same
    explicit-source invocation the injection tests use."""
    findings = analyze_sources([_read(rel) for rel in INJECTION_SOURCES])
    bad = [
        f for f in findings
        if not f.suppressed
        and "Unsynced" not in f.message and "EarlyAck" not in f.message
        and "PartialBatchAck" not in f.message
    ]
    assert bad == [], "\n".join(f.message for f in bad)
