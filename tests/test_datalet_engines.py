"""Unit tests for every datalet storage engine."""

import pytest

from repro.datalet import (
    BTreeEngine,
    HashTableEngine,
    LogEngine,
    LSMEngine,
    RedisEngine,
    SSDBEngine,
    make_engine,
)
from repro.errors import KeyNotFound

ALL_ENGINES = [HashTableEngine, BTreeEngine, LogEngine, LSMEngine, SSDBEngine, RedisEngine]
ORDERED_ENGINES = [BTreeEngine, LSMEngine, SSDBEngine]


@pytest.fixture(params=ALL_ENGINES, ids=lambda c: c.__name__)
def engine(request):
    return request.param()


# ---------------------------------------------------------------------------
# contract tests shared by all engines
# ---------------------------------------------------------------------------
def test_put_get_roundtrip(engine):
    engine.put("k", "v")
    assert engine.get("k") == "v"


def test_overwrite(engine):
    engine.put("k", "v1")
    engine.put("k", "v2")
    assert engine.get("k") == "v2"
    assert len(engine) == 1


def test_get_missing_raises(engine):
    with pytest.raises(KeyNotFound):
        engine.get("nope")


def test_delete(engine):
    engine.put("k", "v")
    engine.delete("k")
    with pytest.raises(KeyNotFound):
        engine.get("k")
    assert len(engine) == 0


def test_delete_missing_raises(engine):
    with pytest.raises(KeyNotFound):
        engine.delete("nope")


def test_reinsert_after_delete(engine):
    engine.put("k", "v1")
    engine.delete("k")
    engine.put("k", "v2")
    assert engine.get("k") == "v2"


def test_len_and_items(engine):
    pairs = {f"key{i:03d}": f"val{i}" for i in range(50)}
    for k, v in pairs.items():
        engine.put(k, v)
    assert len(engine) == 50
    assert dict(engine.items()) == pairs


def test_snapshot_restore_roundtrip(engine):
    for i in range(20):
        engine.put(f"k{i}", f"v{i}")
    snap = engine.snapshot()
    fresh = type(engine)()
    fresh.restore(snap)
    assert dict(fresh.items()) == dict(engine.items())


def test_contains(engine):
    engine.put("a", "1")
    assert engine.contains("a")
    assert not engine.contains("b")


def test_stats_reports_live_keys(engine):
    engine.put("a", "1")
    assert engine.stats()["live_keys"] == 1.0


# ---------------------------------------------------------------------------
# scans
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cls", ORDERED_ENGINES, ids=lambda c: c.__name__)
def test_scan_ordered_half_open(cls):
    e = cls()
    for i in range(100):
        e.put(f"k{i:03d}", str(i))
    result = e.scan("k010", "k020")
    assert [k for k, _ in result] == [f"k{i:03d}" for i in range(10, 20)]


@pytest.mark.parametrize("cls", ORDERED_ENGINES, ids=lambda c: c.__name__)
def test_scan_limit(cls):
    e = cls()
    for i in range(100):
        e.put(f"k{i:03d}", str(i))
    assert len(e.scan("k000", "k999", limit=7)) == 7


@pytest.mark.parametrize("cls", ORDERED_ENGINES, ids=lambda c: c.__name__)
def test_scan_excludes_deleted(cls):
    e = cls()
    for i in range(10):
        e.put(f"k{i}", str(i))
    e.delete("k5")
    keys = [k for k, _ in e.scan("k0", "k9~")]
    assert "k5" not in keys and len(keys) == 9


def test_hash_engines_reject_scan():
    for cls in (HashTableEngine, RedisEngine, LogEngine):
        with pytest.raises(NotImplementedError):
            cls().scan("a", "z")


# ---------------------------------------------------------------------------
# LSM internals
# ---------------------------------------------------------------------------
def test_lsm_flush_on_memtable_limit():
    e = LSMEngine(memtable_limit=10)
    for i in range(25):
        e.put(f"k{i:02d}", str(i))
    assert e.flushes >= 2
    assert len(e) == 25
    for i in range(25):
        assert e.get(f"k{i:02d}") == str(i)


def test_lsm_newest_version_wins_across_tables():
    e = LSMEngine(memtable_limit=4)
    for round_ in range(3):
        for i in range(4):
            e.put(f"k{i}", f"r{round_}")
    assert all(e.get(f"k{i}") == "r2" for i in range(4))
    assert len(e) == 4


def test_lsm_tombstone_shadows_older_table():
    e = LSMEngine(memtable_limit=2)
    e.put("a", "1")
    e.put("b", "2")  # flush -> table with a,b
    e.delete("a")    # tombstone in memtable
    with pytest.raises(KeyNotFound):
        e.get("a")
    assert len(e) == 1


def test_lsm_compaction_drops_tombstones():
    e = LSMEngine(memtable_limit=2, max_sstables=2)
    for i in range(8):
        e.put(f"k{i}", str(i))
    e.delete("k0")
    for i in range(8, 20):
        e.put(f"k{i}", str(i))
    e.flush()
    e.compact()
    assert e.compactions >= 1
    assert len(e._tables) <= 1
    with pytest.raises(KeyNotFound):
        e.get("k0")
    assert e.get("k19") == "19"


def test_lsm_invalid_params():
    with pytest.raises(ValueError):
        LSMEngine(memtable_limit=0)
    with pytest.raises(ValueError):
        LSMEngine(max_sstables=0)


# ---------------------------------------------------------------------------
# log engine internals
# ---------------------------------------------------------------------------
def test_log_compaction_triggers_on_garbage():
    e = LogEngine(gc_threshold=0.5, min_gc_records=10)
    for i in range(10):
        e.put("hot", str(i))  # 9 dead versions pile up
    assert e.compactions >= 1
    assert e.get("hot") == "9"
    assert e.garbage_ratio() <= 0.5


def test_log_manual_compact_preserves_data():
    e = LogEngine(min_gc_records=10**9)  # disable auto GC
    for i in range(100):
        e.put(f"k{i % 10}", str(i))
    before = dict(e.items())
    e.compact()
    assert dict(e.items()) == before
    assert e.garbage_ratio() == 0.0


def test_log_tombstones_counted_as_garbage():
    e = LogEngine(min_gc_records=10**9)
    e.put("a", "1")
    e.delete("a")
    assert len(e) == 0
    assert e.garbage_ratio() == 1.0


def test_log_invalid_threshold():
    with pytest.raises(ValueError):
        LogEngine(gc_threshold=0.0)


# ---------------------------------------------------------------------------
# B+-tree internals
# ---------------------------------------------------------------------------
def test_btree_splits_and_height_growth():
    e = BTreeEngine(order=4)
    for i in range(100):
        e.put(f"k{i:03d}", str(i))
    assert e.height > 1
    assert e.splits > 0
    e.check_invariants()


def test_btree_sorted_iteration():
    e = BTreeEngine(order=4)
    import random

    rng = random.Random(3)
    keys = [f"k{i:04d}" for i in range(500)]
    rng.shuffle(keys)
    for k in keys:
        e.put(k, k.upper())
    assert [k for k, _ in e.items()] == sorted(keys)
    e.check_invariants()


def test_btree_invalid_order():
    with pytest.raises(ValueError):
        BTreeEngine(order=2)


def test_btree_scan_empty_tree():
    assert BTreeEngine().scan("a", "z") == []


def test_btree_delete_keeps_invariants():
    e = BTreeEngine(order=4)
    for i in range(200):
        e.put(f"k{i:03d}", str(i))
    for i in range(0, 200, 2):
        e.delete(f"k{i:03d}")
    assert len(e) == 100
    e.check_invariants()
    assert [k for k, _ in e.items()] == [f"k{i:03d}" for i in range(1, 200, 2)]


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------
def test_make_engine_all_kinds():
    for kind in ("ht", "mt", "lsm", "log", "ssdb", "redis"):
        e = make_engine(kind)
        assert e.kind == kind
        e.put("k", "v")
        assert e.get("k") == "v"


def test_make_engine_unknown_kind():
    with pytest.raises(ValueError):
        make_engine("rocksdb")


def test_make_engine_kwargs_passthrough():
    e = make_engine("lsm", memtable_limit=7)
    assert e._memtable_limit == 7
