"""Fig 10 — seamless online adaptation: MS+EC → {MS+SC, AA+EC, AA+SC}.

3 shards, Zipfian 95% GET, transition triggered at t=20 s.  Paper
shapes (§VIII-C): "throughput drops to the lowest point ... because
clients switch connection to the new controlets.  Performance
stabilizes in ~5 sec"; no downtime (requests keep completing) and no
data migration.
"""

from conftest import save_result

from bench_lib import bespokv_deployment, print_timelines
from repro.core.types import Consistency, Topology
from repro.harness.loadgen import LoadGenerator, preload
from repro.workloads import YCSB_B, make_workload

TRIGGER = 20.0
END = 40.0
SHARDS = 3
TARGETS = {
    "MS-EC->MS-SC": (Topology.MS, Consistency.STRONG),
    "MS-EC->AA-EC": (Topology.AA, Consistency.EVENTUAL),
    "MS-EC->AA-SC": (Topology.AA, Consistency.STRONG),
}


def run_transition(target):
    topo, cons = target
    dep = bespokv_deployment(Topology.MS, Consistency.EVENTUAL, SHARDS)
    wl0 = make_workload(YCSB_B, keys=2000, seed=1234)
    preload(dep, {wl0.space.key(i): wl0.value() for i in range(2000)})
    dep.sim.call_later(TRIGGER, lambda: dep.request_transition(topo, cons))
    lg = LoadGenerator(
        dep,
        lambda i: make_workload(YCSB_B, keys=2000, seed=2000 + i),
        clients=9,
        sessions_per_client=6,
        warmup=2.0,
        duration=END - 2.0,
        timeline_interval=1.0,
    )
    result = lg.run()
    assert dep.shard(0).topology is topo and dep.shard(0).consistency is cons
    return result


def phases(timeline):
    def window(a, b):
        vals = [q for t, q in timeline if a <= t < b]
        return sum(vals) / max(1, len(vals))

    return {
        "before": window(10.0, TRIGGER),
        "dip": min(q for t, q in timeline if TRIGGER <= t < TRIGGER + 6.0),
        "after": window(TRIGGER + 10.0, END),
    }


def test_fig10_adaptability(benchmark):
    def run():
        return {name: run_transition(t) for name, t in TARGETS.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_timelines(
        "Fig 10: throughput timeline across transition (trigger at t=20s)",
        {name: res.timeline for name, res in results.items()},
        mark=TRIGGER,
    )
    summary = {name: phases(res.timeline) for name, res in results.items()}
    save_result("fig10", summary)

    for name, ph in summary.items():
        print(f"{name}: before={ph['before']:.0f} dip={ph['dip']:.0f} after={ph['after']:.0f}")
        # a visible dip right after the trigger
        assert ph["dip"] < ph["before"] * 0.8, f"{name}: no dip visible"
        # service recovers and stabilizes (AA+SC lands lower by design —
        # the DLM caps it — so compare against its own steady state)
        assert ph["after"] > ph["dip"], name
        # no downtime: every 1s window after the trigger completed ops
        for t, q in results[name].timeline:
            if TRIGGER <= t < END - 1:
                assert q > 0, f"{name}: zero throughput at t={t}"
    # EC->EC topology switch returns to a comparable level (paper: same
    # steady state); consistency upgrades may settle lower (SC is
    # costlier than EC)
    aaec = summary["MS-EC->AA-EC"]
    assert aaec["after"] > aaec["before"] * 0.7
