"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure: it runs the full
simulated experiment once (``benchmark.pedantic(..., rounds=1)`` — the
timing of interest is inside the simulation, not the wall clock),
prints the same rows/series the paper reports, asserts the *shape*
(who wins, roughly by what factor), and appends a record to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2))
