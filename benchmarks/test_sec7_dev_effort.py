"""§VII — development effort: the reuse story in numbers.

The paper: "All controlets share the sample event-handling controlet
template of 150 LoC ... the common datalet template of 966 LoC" and
new datalets/controlets took 3 / 6 person-days.  Here the measurable
analogue: each pre-built controlet is a small delta over the shared
framework (base Controlet + actor machinery), and each datalet engine
a small delta over the engine/actor template.
"""

import inspect

from conftest import save_result

from bench_lib import print_table
from repro.core import controlet as controlet_mod
from repro.core.aa_ec import AAEventualControlet
from repro.core.aa_sc import AAStrongControlet
from repro.core.hybrid import AAMSHybridControlet
from repro.core.ms_ec import MSEventualControlet
from repro.core.ms_sc import MSStrongControlet
from repro.datalet import base as datalet_base
from repro.datalet.btree import BTreeEngine
from repro.datalet.hashtable import HashTableEngine
from repro.datalet.log import LogEngine
from repro.datalet.lsm import LSMEngine


def loc(obj) -> int:
    """Logical lines of code: non-blank, non-comment source lines."""
    lines = inspect.getsource(obj).splitlines()
    return sum(1 for ln in lines if ln.strip() and not ln.strip().startswith("#"))


def test_sec7_dev_effort(benchmark):
    def run():
        return {
            "framework": {
                "controlet template": loc(controlet_mod.Controlet),
                "datalet template": loc(datalet_base.Engine) + loc(datalet_base.DataletActor),
            },
            "controlets": {
                "MS+SC (chain replication)": loc(MSStrongControlet),
                "MS+EC (async propagation)": loc(MSEventualControlet),
                "AA+SC (DLM locking)": loc(AAStrongControlet),
                "AA+EC (shared log)": loc(AAEventualControlet),
                "AA-MS hybrid (§IV-E)": loc(AAMSHybridControlet),
            },
            "datalets": {
                "tHT": loc(HashTableEngine),
                "tMT": loc(BTreeEngine),
                "tLSM": loc(LSMEngine),
                "tLog": loc(LogEngine),
            },
        }

    counts = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [["-- framework --", ""]]
    rows += [[k, v] for k, v in counts["framework"].items()]
    rows += [["-- controlet deltas --", ""]]
    rows += [[k, v] for k, v in counts["controlets"].items()]
    rows += [["-- datalet engines --", ""]]
    rows += [[k, v] for k, v in counts["datalets"].items()]
    print_table("§VII: development effort (logical LoC)", ["component", "LoC"], rows)
    save_result("sec7", counts)

    # every pre-built controlet is a compact delta over the framework —
    # the same order as the paper's 150-LoC template story.  The bound
    # has grown with the hot path: durability (PR 6) and the coalescing
    # pumps (PR 8) each live in the variant deltas, not the template
    for name, n in counts["controlets"].items():
        assert n < 420, f"{name} is {n} LoC; reuse story broken"
        assert n < counts["framework"]["controlet template"] + counts["framework"]["datalet template"]
    # datalet engines are standalone and small
    for name, n in counts["datalets"].items():
        assert n < 300, f"{name} is {n} LoC"
