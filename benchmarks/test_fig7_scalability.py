"""Fig 7 — BESPOKV scales tHT horizontally: 3→48 nodes, all four
topology/consistency combinations, 95% and 50% GET, uniform and
Zipfian key popularity.

Expected shapes (paper §VIII-B):
* every combo grows with cluster size except AA+SC, which is flattened
  by DLM serialization ("AA+SC performs worse as expected in locking
  based implementation");
* for EC, both MS and AA scale near-linearly; AA+EC leads on the
  write-heavy mix (writes enter at any active);
* MS+SC scales but trails MS+EC on reads (tail-only reads).
"""

from conftest import save_result

from bench_lib import bespokv_run, print_series
from repro.core.types import Consistency, Topology
from repro.workloads import YCSB_A, YCSB_B

#: nodes = shards * 3 replicas → 3, 6, 12, 24, 48 nodes as in Fig 7.
SHARD_SIZES = [1, 2, 4, 8, 16]
NODES = [s * 3 for s in SHARD_SIZES]

COMBOS = {
    "MS+SC": (Topology.MS, Consistency.STRONG),
    "MS+EC": (Topology.MS, Consistency.EVENTUAL),
    "AA+SC": (Topology.AA, Consistency.STRONG),
    "AA+EC": (Topology.AA, Consistency.EVENTUAL),
}


def sweep(mix, distribution):
    series = {}
    for name, (topo, cons) in COMBOS.items():
        series[name] = [
            bespokv_run(topo, cons, shards, mix, distribution=distribution).qps
            for shards in SHARD_SIZES
        ]
    return series


def test_fig7_scalability(benchmark):
    def run():
        return {
            ("95% GET", dist): sweep(YCSB_B, dist) for dist in ("uniform", "zipfian")
        } | {
            ("50% GET", dist): sweep(YCSB_A, dist) for dist in ("uniform", "zipfian")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for (mix_name, dist), series in results.items():
        print_series(
            f"Fig 7: tHT scalability, {mix_name}, {dist}",
            "nodes",
            NODES,
            {k: [v / 1e3 for v in vs] for k, vs in series.items()},
        )
    save_result(
        "fig7",
        {f"{m}|{d}": s for (m, d), s in results.items()},
    )

    for (mix_name, dist), series in results.items():
        # 1) everything except AA+SC scales: 16 shards >= 4x of 1 shard
        for combo in ("MS+SC", "MS+EC", "AA+EC"):
            growth = series[combo][-1] / series[combo][0]
            assert growth > 4.0, f"{combo} {mix_name} {dist}: growth {growth:.1f}x"
        # 2) AA+SC is DLM-capped: flat (< 2x growth) and the lowest curve
        aasc_growth = series["AA+SC"][-1] / series["AA+SC"][0]
        assert aasc_growth < 2.0, f"AA+SC unexpectedly scaled {aasc_growth:.1f}x"
        assert series["AA+SC"][-1] == min(s[-1] for s in series.values())
        # 3) EC beats SC at scale for the same topology
        assert series["MS+EC"][-1] > series["MS+SC"][-1]
        assert series["AA+EC"][-1] > series["AA+SC"][-1]

    # 4) AA+EC leads MS+EC on the write-heavy mix (any active takes
    # writes).  Under uniform popularity the lead is clear; under Zipf
    # the hottest shard caps both systems alike, so we only require
    # AA+EC not to trail (the paper's 47% figure is from the 6-node
    # local testbed — reproduced in test_fig12).
    w = results[("50% GET", "uniform")]
    assert w["AA+EC"][-1] > w["MS+EC"][-1] * 1.1, "AA+EC should lead MS+EC on writes"
    wz = results[("50% GET", "zipfian")]
    assert wz["AA+EC"][-1] > wz["MS+EC"][-1] * 0.95
    # on the read-heavy mix MS+EC and AA+EC are comparable (within 25%)
    for dist in ("uniform", "zipfian"):
        r = results[("95% GET", dist)]
        ratio = r["AA+EC"][-1] / r["MS+EC"][-1]
        assert 0.75 < ratio < 1.25, f"AA+EC vs MS+EC on reads: {ratio:.2f}"
