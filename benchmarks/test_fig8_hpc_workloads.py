"""Fig 8 — BESPOKV scales HPC workloads: job launch and I/O forwarding
under MS/AA x SC/EC, 3→48 nodes.

Paper shapes (§VIII-B): "MS outperforms AA for SC whereas the trend is
opposite for EC where AA performs better than MS.  Performance of I/O
forwarding is slightly better than job launch ... 12% more reads."
"""

from conftest import save_result

from bench_lib import bespokv_run, print_series
from repro.core.types import Consistency, Topology
from repro.workloads import IO_FORWARDING_MIX, JOB_LAUNCH_MIX

SHARD_SIZES = [1, 2, 4, 8, 16]
NODES = [s * 3 for s in SHARD_SIZES]

WORKLOADS = {"Job-L": JOB_LAUNCH_MIX, "I/O-F": IO_FORWARDING_MIX}


def sweep(consistency):
    series = {}
    for topo_name, topo in (("MS", Topology.MS), ("AA", Topology.AA)):
        for wl_name, mix in WORKLOADS.items():
            series[f"{topo_name} {wl_name}"] = [
                bespokv_run(topo, consistency, s, mix, distribution="uniform").qps
                for s in SHARD_SIZES
            ]
    return series


def test_fig8_hpc_workloads(benchmark):
    def run():
        return {
            "SC": sweep(Consistency.STRONG),
            "EC": sweep(Consistency.EVENTUAL),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for cons, series in results.items():
        print_series(
            f"Fig 8: HPC workloads, {cons}",
            "nodes",
            NODES,
            {k: [v / 1e3 for v in vs] for k, vs in series.items()},
        )
    save_result("fig8", results)

    sc, ec = results["SC"], results["EC"]
    for wl in ("Job-L", "I/O-F"):
        # MS beats AA under SC (chain replication vs DLM locking)
        assert sc[f"MS {wl}"][-1] > sc[f"AA {wl}"][-1] * 1.5, wl
        # AA at least matches MS under EC (any active takes writes)
        assert ec[f"AA {wl}"][-1] > ec[f"MS {wl}"][-1] * 0.95, wl
        # MS curves scale with cluster size
        assert sc[f"MS {wl}"][-1] > sc[f"MS {wl}"][0] * 4
        assert ec[f"MS {wl}"][-1] > ec[f"MS {wl}"][0] * 4
    # I/O forwarding (62% reads) edges out job launch (50% reads)
    for series, combo in ((ec, "MS"), (ec, "AA"), (sc, "MS")):
        assert series[f"{combo} I/O-F"][-1] > series[f"{combo} Job-L"][-1] * 0.98, combo
