"""PR 6 — durable datalets: recovery time and the durability tax.

Two measurements the paper's durability story implies but no figure
reports directly:

* **recovery time** — a durable crash-restart (WAL replay from the
  host's DurableStore + delta catch-up from a live peer, back inside
  the detection window) returns a shard to full replicated strength
  faster than the crash-stop path (detection timeout + standby spawn +
  full snapshot sync);
* **durability tax** — the put-throughput cost of write-ahead logging
  as a function of the fsync policy: no WAL, group commit
  (``sync_every=8``), and per-ack fsync (``sync_every=1``).  The
  amortized fsync charge in the cost model makes the tax monotone in
  sync frequency.

Results land in ``benchmarks/results/pr6_durability.json`` and the
consolidated ``BENCH_PR6.json`` at the repo root (the PR 5 summary is
left in place as the comparison baseline).
"""

import pathlib

from conftest import save_result

from bench_lib import bench_control, bench_costs, emit_summary, print_table, run_load
from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.workloads import OpMix

ROOT = pathlib.Path(__file__).parent.parent

PRELOAD_WRITES = 240
RECOVER_AFTER = 0.5  # inside the 3 s detection window


def durable_deployment(seed=11, shards=1, **kw):
    kw.setdefault("durable", True)
    kw.setdefault("control", bench_control())
    spec = DeploymentSpec(
        shards=shards, replicas=3,
        topology=Topology.MS, consistency=Consistency.STRONG,
        costs=bench_costs(),
        standbys=1, seed=seed, **kw,
    )
    dep = Deployment(spec)
    dep.start()
    return dep


def shard_converged(dep, expect):
    """Shard back at full strength with identical replica contents."""
    shard = dep.map.shard("s0")
    if len(shard.replicas) < 3:
        return False
    dumps = []
    for r in shard.ordered():
        if not dep.cluster.is_host_alive(r.host):
            return False
        actor = dep.cluster.actors.get(r.datalet)
        if actor is None:
            return False
        dumps.append(dict(actor.engine.snapshot()))
    return all(d == expect for d in dumps)


def time_to_full_strength(durable_restart, seed=11):
    """Sim seconds from the crash until the shard is fully replicated
    and converged again — via WAL rejoin or via standby replacement."""
    dep = durable_deployment(seed=seed)
    client = dep.client("bench")
    dep.sim.run_future(client.connect())
    expect = {}
    for i in range(PRELOAD_WRITES):
        expect[f"key{i:04d}"] = f"val{i}"
        dep.sim.run_future(client.put(f"key{i:04d}", f"val{i}"))
    victim = dep.replica_host(0, 1)
    t0 = dep.sim.now
    dep.cluster.kill_host(victim)
    record = None
    if durable_restart:
        def recover():
            nonlocal record
            record = dep.recover_host(victim)
        dep.sim.call_later(RECOVER_AFTER, recover)
    deadline = t0 + 60.0
    while dep.sim.now < deadline:
        dep.sim.run_until(dep.sim.now + 0.1)
        if shard_converged(dep, expect):
            return dep.sim.now - t0, record
    raise AssertionError("shard never reconverged after the crash")


def put_throughput(durable, sync_every=1, seed=0):
    # per-op protocol: the tax sweep isolates the WAL fsync *policy*;
    # with hot-path coalescing on, the accept pump already groups WAL
    # commits per frame, flattening the sync_every axis this figure
    # measures (the batch-cap x sync_every interplay is
    # test_ablations.py::test_ablation_ec_batching's job)
    control = ControlConfig(group_commit_max=1, chain_batch_max=1,
                            replicate_batch_max=1, ec_batch_max=1)
    dep = durable_deployment(
        seed=seed, shards=2, durable=durable, wal_sync_every=sync_every,
        control=control,
    )
    result = run_load(dep, OpMix(put=1.0), duration=1.0, keys=500)
    return result.qps


def test_pr6_durability(benchmark):
    def run():
        rejoin_t, record = time_to_full_strength(durable_restart=True)
        replace_t, _ = time_to_full_strength(durable_restart=False)
        qps_off = put_throughput(durable=False)
        qps_group = put_throughput(durable=True, sync_every=8)
        qps_fsync = put_throughput(durable=True, sync_every=1)
        return rejoin_t, record, replace_t, qps_off, qps_group, qps_fsync

    rejoin_t, record, replace_t, qps_off, qps_group, qps_fsync = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    print_table(
        "PR6: recovery time to full shard strength (s)",
        ["path", "time", "detail"],
        [
            ["WAL rejoin", f"{rejoin_t:.2f}",
             f"replayed {record.records_applied} records to seq "
             f"{record.replayed_seq} (snapshot seq {record.snapshot_seq})"],
            ["crash-stop + standby", f"{replace_t:.2f}",
             "detection timeout + spawn + full snapshot sync"],
        ],
    )
    tax_group = 100.0 * (1.0 - qps_group / qps_off)
    tax_fsync = 100.0 * (1.0 - qps_fsync / qps_off)
    print_table(
        "PR6: durability tax, 100% PUT (QPS, bench cost scale)",
        ["wal policy", "QPS", "tax"],
        [
            ["off", f"{qps_off:.0f}", "-"],
            ["group commit (sync_every=8)", f"{qps_group:.0f}",
             f"{tax_group:.1f}%"],
            ["fsync per ack (sync_every=1)", f"{qps_fsync:.0f}",
             f"{tax_fsync:.1f}%"],
        ],
    )

    # the durable rejoin skips the detection window and the full resync
    assert rejoin_t < replace_t, (rejoin_t, replace_t)
    assert record is not None and record.replayed_seq >= record.durable_seq_at_crash
    assert record.records_applied + record.snapshot_seq >= PRELOAD_WRITES
    # the tax is real and monotone in fsync frequency; per-ack fsync is
    # dominated by the sync itself (the classic aof-always cliff), and
    # group commit amortizes most of it away
    assert qps_off > qps_group > qps_fsync
    assert tax_fsync < 95.0, "per-ack fsync should tax, not stall"
    assert tax_group < 0.5 * tax_fsync, "group commit should amortize the fsync"

    save_result("pr6_durability", {
        "recovery_time_s": {
            "wal_rejoin": round(rejoin_t, 3),
            "crash_stop_standby": round(replace_t, 3),
            "speedup": round(replace_t / rejoin_t, 2),
        },
        "wal_replay": {
            "records_applied": record.records_applied,
            "replayed_seq": record.replayed_seq,
            "snapshot_seq": record.snapshot_seq,
            "torn_tail_dropped": record.torn_tail_dropped,
        },
        "durability_tax_put_qps": {
            "wal_off": round(qps_off, 1),
            "group_commit_8": round(qps_group, 1),
            "fsync_per_ack": round(qps_fsync, 1),
            "tax_group_pct": round(tax_group, 1),
            "tax_fsync_pct": round(tax_fsync, 1),
        },
    })
    out = emit_summary(out_path=ROOT / "BENCH_PR6.json")
    print(f"\nconsolidated summary -> {out}")
