"""Fig 6 — effect of using different data abstractions (paper §VI-A).

The Lustre-monitoring use case stores replicas in three engines (LSM,
B+-tree, log) under MS+EC and drives two workloads:

* **monitoring** — write-dominated time-series ingest;
* **analytics**  — "completely read-intensive with uniform distribution".

Paper shapes: LSM beats B+ by ~25% on the monitoring (write) workload;
B+ beats LSM by ~35% on analytics (reads); both beat the log engine.
"""

from conftest import save_result

from bench_lib import bespokv_deployment, print_series, run_load
from repro.core.types import Consistency, Topology
from repro.workloads import ANALYTICS_MIX, MONITORING_MIX

ENGINES = {"LSM": "lsm", "B+": "mt", "Log": "log"}
SHARDS = 8  # 24 nodes, matching the paper's 24-node setup


def run_one(kind: str, mix) -> float:
    dep = bespokv_deployment(
        Topology.MS, Consistency.EVENTUAL, SHARDS, datalet_kinds=(kind,)
    )
    return run_load(dep, mix, distribution="uniform").qps


def test_fig6_data_abstractions(benchmark):
    def run():
        return {
            label: {
                "Monitoring": run_one(kind, MONITORING_MIX),
                "Analytics": run_one(kind, ANALYTICS_MIX),
            }
            for label, kind in ENGINES.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_series(
        "Fig 6: data abstractions (24 nodes, MS+EC)",
        "workload",
        ["Monitoring", "Analytics"],
        {label: [res["Monitoring"] / 1e3, res["Analytics"] / 1e3]
         for label, res in results.items()},
    )
    save_result("fig6", results)

    lsm, btree, log = results["LSM"], results["B+"], results["Log"]
    # LSM wins write-heavy monitoring by a meaningful margin (paper 25%)
    write_gain = lsm["Monitoring"] / btree["Monitoring"]
    assert write_gain > 1.10, f"LSM vs B+ on monitoring: {write_gain:.2f}x"
    # B+ wins read-heavy analytics (paper 35%)
    read_gain = btree["Analytics"] / lsm["Analytics"]
    assert read_gain > 1.15, f"B+ vs LSM on analytics: {read_gain:.2f}x"
    # both in-memory-indexed engines beat the HDD log on both workloads
    for workload in ("Monitoring", "Analytics"):
        assert lsm[workload] > log[workload]
        assert btree[workload] > log[workload]
