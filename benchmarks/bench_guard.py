"""Cross-PR bench regression guard.

Compares the consolidated summary of this PR's benchmark run
(``BENCH_PR10.json``) against the frozen ``BENCH_PR5.json`` baseline:

* every tier-1 *throughput* figure's peak may not regress more than
  10% (latency/feature figures are excluded — their leaves mix units
  where "lower" can be better);
* the observability off-switch must stay effectively free: the
  ``obs_overhead`` off-mode overhead gate is 2%;
* the PR 8 headline must hold: the batched AA+EC write path at least
  1.5x its coalescing-disabled self;
* the PR 10 headline must hold: an online reshard is *online* — in
  every combo the worst one-second interval inside the migration
  window retains at least 20% of the pre-reshard throughput
  (``pause_ratio`` below 0.8), keys actually moved, and post-commit
  throughput recovers to at least 70% of the pre-reshard level.

Exit status 0 = all gates pass; 1 = regression (details on stdout).

Usage::

    python benchmarks/bench_guard.py [CURRENT [BASELINE]]

defaulting to ``BENCH_PR10.json`` / ``BENCH_PR5.json`` at the repo root.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: figures whose numeric peak is a throughput claim (QPS-dominated
#: payloads); a >10% drop in any of these fails the guard.
THROUGHPUT_FIGURES = (
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig11",
    "fig12",
    "ablation_sharedlog",
    "ablation_mapping",
)

MAX_REGRESSION = 0.10
OBS_OFF_GATE = 0.02
HEADLINE_SPEEDUP = 1.5
#: worst in-window 1s interval may lose at most this fraction of the
#: pre-reshard throughput (1.0 would mean a full cutover pause).
RESHARD_PAUSE_GATE = 0.8
#: post-commit throughput must recover to this fraction of pre-reshard.
RESHARD_RECOVERY_GATE = 0.7

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def check(current_path: Path, baseline_path: Path) -> int:
    # a lost summary file is a guard failure, not a stack trace: CI
    # runs this right after the producing benchmarks, and "the run that
    # was supposed to produce the figures didn't" is exactly the kind
    # of regression the guard exists to catch
    missing = [p for p in (current_path, baseline_path) if not p.is_file()]
    if missing:
        print("\nbench guard: FAIL")
        for p in missing:
            print(f"  - missing summary {p} "
                  "(benchmark run did not produce it?)")
        return 1
    current = _load(current_path)["figures"]
    baseline = _load(baseline_path)["figures"]
    failures = []

    for fig in THROUGHPUT_FIGURES:
        if fig not in current or fig not in baseline:
            failures.append(f"{fig}: missing from "
                            f"{'current' if fig not in current else 'baseline'}"
                            " summary")
            continue
        cur, base = current[fig].get("max"), baseline[fig].get("max")
        if not base:
            continue
        ratio = cur / base
        verdict = "OK"
        if ratio < 1.0 - MAX_REGRESSION:
            verdict = f"FAIL (>{MAX_REGRESSION:.0%} regression)"
            failures.append(f"{fig}: peak {base:.1f} -> {cur:.1f} "
                            f"({ratio:.2f}x)")
        print(f"  {fig:<22} peak {base:>10.1f} -> {cur:>10.1f}  "
              f"{ratio:5.2f}x  {verdict}")

    obs_path = RESULTS_DIR / "obs_overhead.json"
    if obs_path.exists():
        off = float(_load(obs_path)["off_overhead"])
        verdict = "OK" if off <= OBS_OFF_GATE else "FAIL"
        print(f"  obs-off overhead       {off:+.2%} (gate {OBS_OFF_GATE:.0%})"
              f"  {verdict}")
        if off > OBS_OFF_GATE:
            failures.append(f"obs-off overhead {off:.2%} exceeds "
                            f"{OBS_OFF_GATE:.0%} gate")
    else:
        failures.append(f"missing {obs_path} (run benchmarks/test_obs_overhead.py)")

    pr8_path = RESULTS_DIR / "pr8_batching.json"
    if pr8_path.exists():
        speedup = float(_load(pr8_path)["aa_ec_speedup"])
        verdict = "OK" if speedup >= HEADLINE_SPEEDUP else "FAIL"
        print(f"  aa-ec batching speedup {speedup:.2f}x "
              f"(gate {HEADLINE_SPEEDUP:.1f}x)  {verdict}")
        if speedup < HEADLINE_SPEEDUP:
            failures.append(f"aa-ec batching speedup {speedup:.2f}x below "
                            f"{HEADLINE_SPEEDUP:.1f}x")
    else:
        failures.append(f"missing {pr8_path} (run benchmarks/test_pr8_batching.py)")

    pr10_path = RESULTS_DIR / "pr10_resharding.json"
    if pr10_path.exists():
        for combo, ph in sorted(_load(pr10_path).items()):
            pause = float(ph["pause_ratio"])
            recovery = (float(ph["after_qps"]) / float(ph["before_qps"])
                        if ph["before_qps"] else 0.0)
            ok = (pause <= RESHARD_PAUSE_GATE
                  and recovery >= RESHARD_RECOVERY_GATE
                  and ph["keys_moved"] > 0)
            print(f"  reshard {combo:<14} pause {pause:5.2f} "
                  f"(gate {RESHARD_PAUSE_GATE:.2f})  recovery {recovery:4.2f} "
                  f"(gate {RESHARD_RECOVERY_GATE:.2f})  "
                  f"moved {ph['keys_moved']:>4}  {'OK' if ok else 'FAIL'}")
            if not ok:
                failures.append(
                    f"reshard {combo}: pause {pause:.2f} / recovery "
                    f"{recovery:.2f} / moved {ph['keys_moved']} outside gates")
    else:
        failures.append(
            f"missing {pr10_path} (run benchmarks/test_pr10_resharding.py)")

    if failures:
        print("\nbench guard: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench guard: PASS")
    return 0


def main(argv: list) -> int:
    current = Path(argv[1]) if len(argv) > 1 else REPO_ROOT / "BENCH_PR10.json"
    baseline = Path(argv[2]) if len(argv) > 2 else REPO_ROOT / "BENCH_PR5.json"
    print(f"bench guard: {current.name} vs {baseline.name}")
    return check(current, baseline)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
