"""Ablations over the design choices DESIGN.md §6 calls out.

1. **Replication factor / chain length** — chain replication's write
   latency grows with chain length while EC read capacity grows with
   replica count: the topology choice is a real trade, not a default.
2. **Shared-log ordering vs unordered gossip** — BESPOKV AA+EC pays a
   modest throughput tax vs the Dynomite model for its convergence
   guarantee under conflicting writes (the paper's App C-C argument).
3. **EC propagation batching** — the master amortizes propagation
   messages over batches; tiny batch intervals burn master CPU on
   write-heavy load.
"""

from conftest import save_result

from bench_lib import (
    baseline_run,
    bench_costs,
    bespokv_run,
    print_table,
    run_load,
)
from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.workloads import YCSB_A, YCSB_B


def run_with_control(control: ControlConfig, mix, replicas=3, shards=4,
                     topology=Topology.MS, consistency=Consistency.EVENTUAL,
                     durable=False, wal_sync_every=1):
    dep = Deployment(
        DeploymentSpec(
            shards=shards, replicas=replicas, topology=topology,
            consistency=consistency, costs=bench_costs(), control=control,
            durable=durable, wal_sync_every=wal_sync_every,
        )
    )
    dep.start()
    return run_load(dep, mix)


def test_ablation_chain_length(benchmark):
    """Longer chains: slower strong writes, more EC read capacity."""

    def run():
        out = {}
        for replicas in (2, 3, 5):
            sc = bespokv_run(Topology.MS, Consistency.STRONG, 4, YCSB_A,
                             replicas=replicas)
            ec = bespokv_run(Topology.MS, Consistency.EVENTUAL, 4, YCSB_B,
                             replicas=replicas)
            out[replicas] = {"sc_put_p99_ms": sc.p99_ms, "sc_qps": sc.qps,
                             "ec_read_qps": ec.qps}
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: replication factor",
                ["replicas", "MS+SC 50%GET kQPS", "p99 ms", "MS+EC 95%GET kQPS"],
                [[r, f"{d['sc_qps'] / 1e3:.2f}", f"{d['sc_put_p99_ms']:.0f}",
                  f"{d['ec_read_qps'] / 1e3:.2f}"] for r, d in out.items()])
    save_result("ablation_chain_length", out)
    # EC reads scale with replica count
    assert out[5]["ec_read_qps"] > out[2]["ec_read_qps"] * 1.5
    # strong writes get slower as the chain grows
    assert out[5]["sc_qps"] < out[2]["sc_qps"]


def test_ablation_sharedlog_vs_gossip(benchmark):
    """Ordered shared log (BESPOKV AA+EC) vs unordered peer gossip
    (Dynomite model): the ordering service used to cost ~5% throughput
    for its convergence guarantee (demonstrated in
    tests/test_baselines.py); sequencer group commit amortizes the
    ordering round-trip across concurrent writes, so the ordered path
    now matches or beats the unordered baseline."""

    def run():
        ours = bespokv_run(Topology.AA, Consistency.EVENTUAL, 8, YCSB_A)
        gossip = baseline_run("dynomite", 8, YCSB_A)
        return {"sharedlog_qps": ours.qps, "gossip_qps": gossip.qps}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    tax = 1 - out["sharedlog_qps"] / out["gossip_qps"]
    print_table("Ablation: AA+EC ordering service",
                ["variant", "kQPS"],
                [["shared log (ordered, group commit)",
                  f"{out['sharedlog_qps'] / 1e3:.2f}"],
                 ["peer gossip (unordered)", f"{out['gossip_qps'] / 1e3:.2f}"],
                 ["ordering tax", f"{tax:.0%}"]])
    save_result("ablation_sharedlog", {**out, "tax": tax})
    # group commit pays for the ordering service: convergence now comes
    # at no throughput cost vs the unordered baseline
    assert out["sharedlog_qps"] > out["gossip_qps"] * 0.95
    assert tax < 0.6, f"ordering tax {tax:.0%} looks broken"


def test_ablation_controlet_mapping(benchmark):
    """1:1 colocated pairs vs the N:1 mapping (§III): packing all
    controlets onto a few dedicated hosts trades loopback datalet calls
    for network hops and concentrates control-plane CPU — fine until
    the controlet hosts saturate."""

    def run():
        out = {}
        for label, ctl_hosts in (("1:1 colocated", None), ("6:2 dedicated", 2),
                                 ("6:1 dedicated", 1)):
            dep = Deployment(
                DeploymentSpec(
                    shards=2, replicas=3, topology=Topology.MS,
                    consistency=Consistency.EVENTUAL, costs=bench_costs(),
                    controlet_hosts=ctl_hosts,
                )
            )
            dep.start()
            out[label] = run_load(dep, YCSB_B).qps
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: controlet:datalet mapping (6 replicas)",
                ["mapping", "95%GET kQPS"],
                [[k, f"{v / 1e3:.2f}"] for k, v in out.items()])
    save_result("ablation_mapping", out)
    # both mappings function; over-consolidating onto one host loses
    # throughput to control-plane CPU saturation
    assert out["6:1 dedicated"] < out["1:1 colocated"]
    assert out["6:2 dedicated"] > out["6:1 dedicated"] * 0.9


def test_ablation_ec_batching(benchmark):
    """Batch size × WAL sync granularity sweep on the write-heavy mix,
    durable MS+EC.  The old interval-only sweep showed ~10% spread —
    the propagation *interval* only shifts when the same messages go
    out.  Hot-path coalescing caps (accept apply_batch + replicate
    frames) change how many messages and fsyncs each op costs, so this
    sweep actually discriminates."""

    def run():
        out = {}
        for cap in (1, 4, 16):
            control = ControlConfig(
                group_commit_max=cap, chain_batch_max=cap,
                replicate_batch_max=max(cap, 1) * 16, ec_batch_max=cap,
            )
            for sync_every in (1, 8):
                qps = run_with_control(
                    control, YCSB_A, durable=True,
                    wal_sync_every=sync_every,
                ).qps
                out[f"batch{cap}_sync{sync_every}"] = qps
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: batch cap x WAL sync_every (durable MS+EC)",
                ["config", "50%GET kQPS"],
                [[k, f"{q / 1e3:.2f}"] for k, q in out.items()])
    spread = max(out.values()) / min(out.values())
    save_result("ablation_batching", {**out, "spread": spread})
    # the knobs must discriminate: coalescing (batch16) has to beat the
    # per-op path (batch1) clearly at the same sync granularity...
    assert out["batch16_sync1"] > out["batch1_sync1"] * 1.3
    # ...and the full sweep shows a real spread, not 10% noise
    assert spread > 1.3, f"spread {spread:.2f} does not discriminate"
