"""Fig 11 — tRedis under BESPOKV (MS+SC / MS+EC / AA+EC) vs Dynomite
(AA+EC only) and Twemproxy (sharding only), 8 shards x 3 replicas on
24 nodes.

Paper shapes (§VIII-E): BESPOKV adds MS+SC and AA+EC to Redis with
reasonable performance; MS+SC is more expensive than MS+EC; "Twemproxy
... performs slightly better than BESPOKV in supporting MS+EC" (it
does strictly less — no replication); Dynomite+Redis ≈ BESPOKV AA+EC.
"""

from conftest import save_result

from bench_lib import baseline_run, bespokv_run, print_series
from repro.core.types import Consistency, Topology
from repro.workloads import YCSB_A, YCSB_B

SHARDS = 8

MIXES = {
    "Unif 95% GET": (YCSB_B, "uniform"),
    "Zipf 95% GET": (YCSB_B, "zipfian"),
    "Unif 50% GET": (YCSB_A, "uniform"),
    "Zipf 50% GET": (YCSB_A, "zipfian"),
}


def test_fig11_proxy_comparison(benchmark):
    def run():
        out = {}
        for label, (mix, dist) in MIXES.items():
            out[label] = {
                "tRedis MS+SC": bespokv_run(
                    Topology.MS, Consistency.STRONG, SHARDS, mix,
                    distribution=dist, datalet_kinds=("redis",)).qps,
                "tRedis MS+EC": bespokv_run(
                    Topology.MS, Consistency.EVENTUAL, SHARDS, mix,
                    distribution=dist, datalet_kinds=("redis",)).qps,
                "tRedis AA+EC": bespokv_run(
                    Topology.AA, Consistency.EVENTUAL, SHARDS, mix,
                    distribution=dist, datalet_kinds=("redis",)).qps,
                # same 24-node hardware, but sharding only — 24 single-
                # copy backends (Twemproxy does not replicate)
                "Twem+Redis MS+EC": baseline_run("twemproxy", SHARDS * 3, mix,
                                                 distribution=dist).qps,
                "Dyno+Redis AA+EC": baseline_run("dynomite", SHARDS, mix,
                                                 distribution=dist).qps,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    systems = list(next(iter(results.values())).keys())
    print_series(
        "Fig 11: proxy-based systems on Redis (24 nodes)",
        "workload",
        list(results.keys()),
        {sys_: [results[m][sys_] / 1e3 for m in results] for sys_ in systems},
    )
    save_result("fig11", results)

    for label, r in results.items():
        # SC costs more than EC on the same topology
        assert r["tRedis MS+SC"] < r["tRedis MS+EC"], label
        # Dynomite and BESPOKV AA+EC are in the same ballpark (paper:
        # "we observed the same performance")
        ratio = r["tRedis AA+EC"] / r["Dyno+Redis AA+EC"]
        assert 0.5 < ratio < 2.0, f"{label}: AA+EC vs Dynomite ratio {ratio:.2f}"
    # Twemproxy's no-replication router beats MS+EC on reads (it does
    # strictly less work per request)
    for label in ("Unif 95% GET", "Zipf 95% GET"):
        assert results[label]["Twem+Redis MS+EC"] > results[label]["tRedis MS+EC"] * 0.9
