"""Fig 16 (Appendix D) — throughput timeline across a node failure.

3 shards x 3 replicas, Zipfian workload, one node killed at t=20 s.
Paper shapes:

* MS+SC, 95% GET, tail killed: throughput drops by ~1/3 (one of three
  shards loses its read replica), recovers once the coordinator
  re-points reads and the standby pair joins;
* MS+SC, 50% GET, head killed: write path of one shard stalls until
  leader election, then recovers;
* MS+EC, 95% GET, slave killed: reads spread over all replicas, so the
  dip is ~1/9;
* AA+EC (and Dynomite): all replicas serve everything — failure is
  barely visible.
"""

from conftest import save_result

from bench_lib import bespokv_deployment, print_timelines
from repro.baselines import BaselineDeployment
from repro.core.types import Consistency, Topology
from repro.harness.loadgen import LoadGenerator, preload
from repro.sim import CostModel
from repro.workloads import YCSB_A, YCSB_B, make_workload

KILL_AT = 20.0
END = 45.0
SHARDS = 3


def run_bespokv(topology, consistency, mix, kill_pos):
    dep = bespokv_deployment(topology, consistency, SHARDS)
    wl0 = make_workload(mix, keys=2000, seed=1234)
    preload(dep, {wl0.space.key(i): wl0.value() for i in range(2000)})
    dep.sim.call_later(KILL_AT, lambda: dep.kill_replica(0, kill_pos))
    lg = LoadGenerator(
        dep,
        lambda i: make_workload(mix, keys=2000, seed=2000 + i),
        clients=9,
        sessions_per_client=6,
        warmup=2.0,
        duration=END - 2.0,
        timeline_interval=1.0,
    )
    result = lg.run()
    assert len(dep.shard(0).replicas) == 3, "standby should have joined"
    return result


def run_dynomite(mix):
    dep = BaselineDeployment("dynomite", shards=SHARDS, replicas=3,
                             costs=CostModel(cpu_scale=600.0))
    dep.start()
    wl0 = make_workload(mix, keys=2000, seed=1234)
    dep.preload({wl0.space.key(i): wl0.value() for i in range(2000)})
    # kill one dynomite host (rack 0, position 0)
    dep.sim.call_later(KILL_AT, lambda: dep.cluster.kill_host("dynohost.r0.0"))
    lg = LoadGenerator(
        dep,
        lambda i: make_workload(mix, keys=2000, seed=2000 + i),
        clients=9,
        sessions_per_client=6,
        warmup=2.0,
        duration=END - 2.0,
        timeline_interval=1.0,
        client_factory=lambda name: dep.client(name, op_timeout=0.5),
    )
    return lg.run()


def window(timeline, a, b):
    vals = [q for t, q in timeline if a <= t < b]
    return sum(vals) / max(1, len(vals))


def test_fig16_failover(benchmark):
    cases = {
        "MS+SC 95%GET (tail)": lambda: run_bespokv(Topology.MS, Consistency.STRONG, YCSB_B, 2),
        "MS+SC 50%GET (head)": lambda: run_bespokv(Topology.MS, Consistency.STRONG, YCSB_A, 0),
        "MS+EC 95%GET (slave)": lambda: run_bespokv(Topology.MS, Consistency.EVENTUAL, YCSB_B, 2),
        "MS+EC 50%GET (master)": lambda: run_bespokv(Topology.MS, Consistency.EVENTUAL, YCSB_A, 0),
        "AA+EC 95%GET": lambda: run_bespokv(Topology.AA, Consistency.EVENTUAL, YCSB_B, 1),
        "Dyno 95%GET": lambda: run_dynomite(YCSB_B),
    }

    def run():
        return {name: fn() for name, fn in cases.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_timelines(
        "Fig 16: throughput timeline across node failure (kill at t=20s)",
        {name: res.timeline for name, res in results.items()},
        mark=KILL_AT,
    )
    summary = {
        name: {
            "before": window(res.timeline, 10, KILL_AT),
            "during": window(res.timeline, KILL_AT + 1, KILL_AT + 6),
            "after": window(res.timeline, 35, END - 1),
        }
        for name, res in results.items()
    }
    save_result("fig16", summary)
    for name, ph in summary.items():
        print(f"{name}: before={ph['before']:.0f} during={ph['during']:.0f} "
              f"after={ph['after']:.0f}")

    # strong tail kill: a visible dip (one shard's reads stall)
    sc_get = summary["MS+SC 95%GET (tail)"]
    assert sc_get["during"] < sc_get["before"] * 0.85
    # recovery restores most of the original throughput
    assert sc_get["after"] > sc_get["before"] * 0.8
    # head kill stalls one shard's writes until leader election
    sc_put = summary["MS+SC 50%GET (head)"]
    assert sc_put["during"] < sc_put["before"] * 0.9
    assert sc_put["after"] > sc_put["before"] * 0.8
    # EC slave kill barely dents reads (1/9 vs 1/3): relative dip is
    # milder than the strong-consistency tail kill
    ec_get = summary["MS+EC 95%GET (slave)"]
    sc_dip = sc_get["during"] / sc_get["before"]
    ec_dip = ec_get["during"] / ec_get["before"]
    assert ec_dip > sc_dip, f"EC dip {ec_dip:.2f} should be milder than SC dip {sc_dip:.2f}"
    # AA and Dynomite serve from all replicas: only slight impact
    for name in ("AA+EC 95%GET", "Dyno 95%GET"):
        ph = summary[name]
        assert ph["during"] > ph["before"] * 0.6, f"{name} dipped too hard"
        assert ph["after"] > ph["before"] * 0.75, name
