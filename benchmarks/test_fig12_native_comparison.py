"""Fig 12 — latency vs throughput against natively-distributed stores
(Cassandra-like, Voldemort-like) on the 6-server local-testbed layout
(2 shards x 3 replicas), Zipfian workloads, rising client counts.

Paper shapes (§VIII-F):
* AA+EC beats Cassandra ~4.5x (reads) / ~4.4x (writes) and Voldemort
  ~1.6x (reads) / ~2.75x (writes);
* AA+EC ≈ MS+EC under 95% GET; AA+EC ~47% higher under 50% GET;
* MS+SC ≈ 3.2x AA+SC (reads), ~2x (writes);
* latency stays flat then knees up as each system saturates.
"""

from conftest import save_result

from bench_lib import baseline_run, bespokv_run, print_table
from repro.core.types import Consistency, Topology
from repro.workloads import YCSB_A, YCSB_B

SHARDS = 2  # 6 storage nodes
CLIENT_STEPS = [2, 6, 12, 24]


def curve_bespokv(topo, cons, mix):
    return [
        bespokv_run(topo, cons, SHARDS, mix, clients=c, sessions_per_client=8,
                    duration=2.0)
        for c in CLIENT_STEPS
    ]


def curve_baseline(kind, mix):
    return [
        baseline_run(kind, 6, mix, clients=c, sessions_per_client=8,
                     duration=2.0)
        for c in CLIENT_STEPS
    ]


def test_fig12_native_comparison(benchmark):
    def run():
        out = {}
        for mix_name, mix in (("95% GET", YCSB_B), ("50% GET", YCSB_A)):
            out[mix_name] = {
                "MS+SC": curve_bespokv(Topology.MS, Consistency.STRONG, mix),
                "MS+EC": curve_bespokv(Topology.MS, Consistency.EVENTUAL, mix),
                "AA+SC": curve_bespokv(Topology.AA, Consistency.STRONG, mix),
                "AA+EC": curve_bespokv(Topology.AA, Consistency.EVENTUAL, mix),
                "Cassandra": curve_baseline("cassandra", mix),
                "Voldemort": curve_baseline("voldemort", mix),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for mix_name, curves in results.items():
        rows = []
        for system, points in curves.items():
            for clients, res in zip(CLIENT_STEPS, points):
                rows.append([system, clients, f"{res.qps:,.0f}",
                             f"{res.mean_latency_ms:.1f}", f"{res.p99_ms:.1f}"])
        print_table(f"Fig 12: latency vs throughput, {mix_name}",
                    ["system", "clients", "QPS", "mean ms", "p99 ms"], rows)

    peak = {
        mix: {sys_: max(r.qps for r in pts) for sys_, pts in curves.items()}
        for mix, curves in results.items()
    }
    save_result("fig12", peak)
    print("\npeak QPS:", peak)

    reads, writes = peak["95% GET"], peak["50% GET"]
    # AA+EC vs the natively-distributed systems (paper: 4.5x / 1.6x
    # reads, 4.4x / 2.75x writes) — require >2x vs Cassandra, >1.2x vs
    # Voldemort
    assert reads["AA+EC"] > reads["Cassandra"] * 2.0
    assert writes["AA+EC"] > writes["Cassandra"] * 2.0
    assert reads["AA+EC"] > reads["Voldemort"] * 1.2
    assert writes["AA+EC"] > writes["Voldemort"] * 1.2
    # MS+EC ≈ AA+EC on reads; AA+EC leads on writes
    assert 0.75 < reads["AA+EC"] / reads["MS+EC"] < 1.35
    assert writes["AA+EC"] > writes["MS+EC"] * 1.2
    # MS+SC decisively beats AA+SC (paper 3.2x reads / ~2x writes)
    assert reads["MS+SC"] > reads["AA+SC"] * 2.0
    assert writes["MS+SC"] > writes["AA+SC"] * 1.5
    # latency knee: p99 at the highest load level that completed ops
    # exceeds p99 at the lowest
    for curves in results.values():
        for system, pts in curves.items():
            completed = [p for p in pts if p.ops > 0]
            assert len(completed) >= 2, f"{system} barely ran"
            assert completed[-1].p99_ms > completed[0].p99_ms, system
