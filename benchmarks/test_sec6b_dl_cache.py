"""§VI-B — distributed cache for deep-learning training ingest.

The paper prototypes a BESPOKV-based distributed cache (with DPDK) and
trains an image-segmentation model on a 100 GB dataset: "Our approach
could complete the training 4x faster than the extant approach (40
images/sec vs 10 images/sec)."

Substitution (DESIGN.md): the extant approach — a parallel file system
serving massive numbers of small files — is modeled as a single
metadata-bottlenecked service; the BESPOKV cache is a real AA+EC tHT
deployment with the DPDK fabric.  Reported metric: images/second over
one training epoch with a pool of data-loading workers.
"""

from conftest import save_result

from bench_lib import bench_costs, print_table
from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.net.actor import Actor
from repro.net.dpdk import dpdk_net_params
from repro.net.simnet import SimCluster
from repro.workloads import DLIngestWorkload

WORKERS = 24
IMAGES = 4000
BATCH = 4

#: PFS small-file read: metadata RPC + open + read of a tiny file —
#: milliseconds of server-side work, the §VI-B bottleneck.
PFS_READ_COST = 2e-3


class PFSActor(Actor):
    """Parallel-filesystem model: one metadata+IO service."""

    def __init__(self):
        super().__init__("pfs")
        self.register("get", lambda m: self.respond(m, "value", {"val": "x"}))

    def service_demand(self, msg, costs) -> float:
        return PFS_READ_COST * costs.cpu_scale / 600.0  # calibrated at bench scale


def epoch_images_per_sec_pfs() -> float:
    cluster = SimCluster(costs=bench_costs())
    cluster.add_host("pfs", cpus=4)
    cluster.add_actor(PFSActor(), host="pfs")
    sim = cluster.sim
    wl = DLIngestWorkload(images=IMAGES, batch=BATCH, seed=1)
    records = [op[1] for op in wl.epoch_ops()]
    shards = [records[i::WORKERS] for i in range(WORKERS)]
    ports = [cluster.add_port(f"worker{i}") for i in range(WORKERS)]
    cluster.start()

    def worker(port, recs):
        for rec in recs:
            yield port.request("pfs", "get", {"key": rec}, timeout=60.0)

    done = sim.gather([sim.spawn(worker(p, s)) for p, s in zip(ports, shards)])
    sim.run_future(done)
    return IMAGES / sim.now


def epoch_images_per_sec_cache() -> float:
    dep = Deployment(
        DeploymentSpec(
            shards=4, replicas=3, topology=Topology.AA,
            consistency=Consistency.EVENTUAL, datalet_kinds=("ht",),
            costs=bench_costs(), net_params=dpdk_net_params(), dpdk=True,
            control=ControlConfig(),
        )
    )
    dep.start()
    sim = dep.sim
    wl = DLIngestWorkload(images=IMAGES, batch=BATCH, seed=1)
    from repro.harness.loadgen import preload

    preload(dep, {op[1]: "x" for op in wl.load_ops()})
    records = [op[1] for op in wl.epoch_ops()]
    shards = [records[i::WORKERS] for i in range(WORKERS)]
    clients = [dep.client(f"worker{i}") for i in range(WORKERS)]
    for c in clients:
        sim.run_future(c.connect())
    start = sim.now

    def worker(client, recs):
        for rec in recs:
            yield client.get(rec)

    done = sim.gather([sim.spawn(worker(c, s)) for c, s in zip(clients, shards)])
    sim.run_future(done)
    return IMAGES / (sim.now - start)


def test_sec6b_dl_cache(benchmark):
    def run():
        return {"pfs": epoch_images_per_sec_pfs(), "cache": epoch_images_per_sec_cache()}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = r["cache"] / r["pfs"]
    print_table("§VI-B: DL training ingest",
                ["backend", "images/sec (modeled)"],
                [["extant (PFS small files)", f"{r['pfs']:.0f}"],
                 ["BESPOKV cache (AA+EC, DPDK)", f"{r['cache']:.0f}"],
                 ["speedup", f"{speedup:.1f}x"]])
    save_result("sec6b", {**r, "speedup": speedup})
    # paper: 4x (40 vs 10 images/s); require >= 3x
    assert speedup > 3.0, f"cache speedup only {speedup:.1f}x"
