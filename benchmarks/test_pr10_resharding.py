"""PR 10 headline: throughput timeline across an online reshard.

3 shards x 3 replicas per combo, YCSB-A (50% GET) Zipfian load; at
t=6 s the coordinator adds a fourth shard and live-migrates the moved
slice while the sessions keep going.  Shapes we assert:

* the cutover is **online**: throughput during the migration window
  never collapses (dual-routed writes + prefer-new-fallback-old reads
  keep every key reachable while copies are in flight);
* the cluster **recovers**: post-commit throughput is back near the
  pre-reshard level once clients adopt the committed ring;
* keys actually moved — the migration pump did real work, it didn't
  just flip the map.

The per-combo before/during/after windows and migration stats land in
``benchmarks/results/pr10_resharding.json``; the module ends by
consolidating everything into ``BENCH_PR10.json`` at the repo root,
which ``benchmarks/bench_guard.py`` gates.
"""

from pathlib import Path

from conftest import save_result

from bench_lib import bespokv_deployment, print_timelines
from repro.core.types import Consistency, Topology
from repro.harness.loadgen import LoadGenerator, preload
from repro.workloads import YCSB_A, make_workload

RESHARD_AT = 5.0
END = 24.0
SHARDS = 3
KEYS = 400

COMBOS = (
    ("ms_sc", Topology.MS, Consistency.STRONG),
    ("ms_ec", Topology.MS, Consistency.EVENTUAL),
    ("aa_sc", Topology.AA, Consistency.STRONG),
    ("aa_ec", Topology.AA, Consistency.EVENTUAL),
)


def run_reshard_case(topology, consistency):
    dep = bespokv_deployment(topology, consistency, SHARDS)
    wl0 = make_workload(YCSB_A, keys=KEYS, seed=1234)
    preload(dep, {wl0.space.key(i): wl0.value() for i in range(KEYS)})

    outcome = {}

    def do_reshard():
        stats = yield dep.request_reshard("add")
        outcome.update(stats)
        outcome["committed_at"] = dep.sim.now - start

    start = dep.sim.now
    dep.sim.call_later(RESHARD_AT, lambda: dep.sim.spawn(do_reshard()))
    lg = LoadGenerator(
        dep,
        lambda i: make_workload(YCSB_A, keys=KEYS, seed=2000 + i),
        clients=6,
        sessions_per_client=4,
        warmup=2.0,
        duration=END - 2.0,
        timeline_interval=1.0,
    )
    result = lg.run(extra_runtime=12.0)
    assert outcome, "reshard did not commit within the run"
    return result, outcome


def window(timeline, a, b, agg=None):
    vals = [q for t, q in timeline if a <= t < b]
    if not vals:
        return 0.0
    if agg == "min":
        return min(vals)
    return sum(vals) / len(vals)


def test_pr10_reshard_under_load(benchmark):
    def run():
        return {name: run_reshard_case(topo, cons)
                for name, topo, cons in COMBOS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_timelines(
        "PR10: throughput timeline across an online reshard "
        "(add shard at t=6s)",
        {name: res.timeline for name, (res, _o) in results.items()},
        mark=RESHARD_AT,
    )
    summary = {}
    for name, (res, outcome) in results.items():
        done = outcome["committed_at"]
        before = window(res.timeline, 2.0, RESHARD_AT)
        during = window(res.timeline, RESHARD_AT, done)
        floor = window(res.timeline, RESHARD_AT, done, agg="min")
        after = window(res.timeline, done + 1.0, END - 1.0)
        summary[name] = {
            "before_qps": before,
            "during_qps": during,
            "during_floor_qps": floor,
            "after_qps": after,
            "window_seconds": round(done - RESHARD_AT, 3),
            "keys_moved": outcome["moved"],
            "keys_skipped": outcome["skipped"],
            "pause_ratio": round(1.0 - (floor / before), 4) if before else 1.0,
        }
        print(f"{name}: before={before:.0f} during={during:.0f} "
              f"floor={floor:.0f} after={after:.0f} "
              f"moved={outcome['moved']} window={done - RESHARD_AT:.1f}s")
    save_result("pr10_resharding", summary)

    for name, ph in summary.items():
        # the migration did real work
        assert ph["keys_moved"] > 0, (name, ph)
        # online: the worst 1-second interval inside the window keeps
        # serving a meaningful fraction of the pre-reshard throughput
        assert ph["during_floor_qps"] > ph["before_qps"] * 0.2, (name, ph)
        # and the cluster recovers once the window commits
        assert ph["after_qps"] > ph["before_qps"] * 0.7, (name, ph)


def test_pr10_emit_summary():
    """Consolidate results into BENCH_PR10.json (repo root)."""
    from bench_lib import emit_summary

    out = emit_summary(
        out_path=Path(__file__).parent.parent / "BENCH_PR10.json")
    print(f"\nsummary -> {out}")
    assert out.exists()
