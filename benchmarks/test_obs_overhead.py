"""Observability overhead micro-benchmark (PR 5 acceptance gate).

The RequestContext refactor must be free when tracing is off: the
request hot path gains only a ``ctx`` attribute carried by reference
and a handful of ``is not None`` guards.  This benchmark drives the
same deterministic closed-loop workload three ways —

* **baseline** — request ids suppressed (``_stamp_rids = False``): the
  pre-refactor hot path, no ``RequestContext`` objects at all;
* **off**      — the shipping default: request ids stamped on
  mutations, tracing disabled;
* **on**       — ``attach_obs()``: full span recording.

and asserts the *off* mode stays within 2% CPU time of baseline.  The
*on* mode is reported for context but not gated — tracing is allowed
to cost something.

Methodology: the container's wall clock is noisy (scheduler phases
drift run-to-run by more than the effect we gate on), so each round
runs baseline and off back-to-back and we gate on the **median of
per-round CPU-time ratios** — machine-speed drift hits both sides of a
ratio equally and cancels.  The default cost model (not the slowed
bench model) keeps the simulator op-bound so per-op Python overhead is
what dominates the measurement.
"""

import statistics
import time

from conftest import save_result

from bench_lib import bespokv_deployment, print_table, run_load
from repro.core.types import Consistency, Topology
from repro.harness.loadgen import preload
from repro.sim import CostModel
from repro.workloads import OpMix, make_workload

MIX = OpMix(get=0.5, put=0.5)  # mutation-heavy: every put stamps a rid
ROUNDS = 7  # median of per-round ratios; odd so the median is a sample


def run_once(mode: str) -> float:
    dep = bespokv_deployment(Topology.MS, Consistency.STRONG, shards=2,
                             costs=CostModel())
    if mode == "on":
        dep.cluster.attach_obs()

    def client_factory(name):
        client = dep.client(name)
        if mode == "baseline":
            client._stamp_rids = False
        return client

    wl = make_workload(OpMix(get=1.0), keys=500, seed=1234)
    preload(dep, {wl.space.key(i): wl.value() for i in range(500)})

    t0 = time.process_time()  # lint: allow[wallclock]
    run_load(dep, MIX, duration=0.4, warmup=0.1, clients=4, keys=500,
             client_factory=client_factory, preload_data=False)
    return time.process_time() - t0  # lint: allow[wallclock]


def test_obs_overhead_when_disabled(benchmark):
    def run():
        ratios_off, ratios_on, walls = [], [], {"baseline": [], "off": [], "on": []}
        for rnd in range(ROUNDS + 1):
            times = {mode: run_once(mode) for mode in ("baseline", "off", "on")}
            if rnd == 0:
                continue  # discard the cold round (allocator warm-up)
            ratios_off.append(times["off"] / times["baseline"])
            ratios_on.append(times["on"] / times["baseline"])
            for mode, t in times.items():
                walls[mode].append(t)
        return {
            "off_overhead": statistics.median(ratios_off) - 1.0,
            "on_overhead": statistics.median(ratios_on) - 1.0,
            "cpu_s": {m: statistics.median(v) for m, v in walls.items()},
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead_off = results["off_overhead"]
    overhead_on = results["on_overhead"]
    cpu = results["cpu_s"]

    print_table(
        "Observability overhead (median of %d paired rounds)" % ROUNDS,
        ["mode", "cpu (s)", "vs baseline"],
        [
            ["baseline (no rids)", f"{cpu['baseline']:.3f}", "--"],
            ["off (default)", f"{cpu['off']:.3f}", f"{overhead_off:+.1%}"],
            ["on (attach_obs)", f"{cpu['on']:.3f}", f"{overhead_on:+.1%}"],
        ],
    )
    save_result("obs_overhead", {
        "baseline_s": cpu["baseline"],
        "off_s": cpu["off"],
        "on_s": cpu["on"],
        "off_overhead": overhead_off,
        "on_overhead": overhead_on,
    })
    # acceptance: tracing disabled costs <= 2% on the hot path
    assert overhead_off <= 0.02, (
        f"tracing-off hot path is {overhead_off:.1%} slower than baseline"
    )
