"""§VIII-D — extensibility: per-request consistency and polyglot
persistence, 8 shards (24 nodes), Zipfian workloads.

Paper shapes:
* per-request consistency (25% SC : 75% EC GETs under MS+SC) lands
  *between* pure MS+SC and pure MS+EC throughput; relaxed GETs have
  lower latency than strong GETs (paper: 0.67 ms vs 1.02 ms);
* polyglot persistence (tHT+tLog+tMT replicas under MS+EC) performs
  comparably to the homogeneous deployment of its slowest member.
"""

import random

from conftest import save_result

from bench_lib import bespokv_deployment, bespokv_run, print_table
from repro.core.types import Consistency, Topology
from repro.workloads import YCSB_B, make_workload

SHARDS = 8


class PerRequestWorkload:
    """95% GET / 5% PUT where 25% of GETs request strong consistency
    and 75% relax to eventual — modeled by tagging ops; the load
    generator path reads the tag via a wrapped client call."""

    def __init__(self, seed):
        self.inner = make_workload(YCSB_B, keys=2000, seed=seed)
        self.rng = random.Random(seed * 7 + 1)
        self.counts = self.inner.counts

    def next_op(self):
        op = self.inner.next_op()
        if op[0] == "get":
            consistency = "strong" if self.rng.random() < 0.25 else "eventual"
            return ("get", op[1], consistency)
        return op


def run_per_request():
    dep = bespokv_deployment(Topology.MS, Consistency.STRONG, SHARDS)
    from bench_lib import _preload_items
    from repro.harness.loadgen import preload

    preload(dep, _preload_items())
    sim = dep.sim
    clients = [dep.client(f"pr{i}") for i in range(SHARDS * 3)]
    for c in clients:
        sim.run_future(c.connect())
    stats = {"ops": 0, "lat": {"strong": [], "eventual": []}, "running": True}

    def session(client, wl):
        while stats["running"]:
            op = wl.next_op()
            t0 = sim.now
            try:
                if op[0] == "get":
                    yield client.get(op[1], consistency=op[2])
                    if sim.now >= 0.3:
                        stats["lat"][op[2]].append(sim.now - t0)
                else:
                    yield client.put(op[1], op[2])
            except Exception:  # noqa: BLE001
                continue
            if sim.now >= 0.3:
                stats["ops"] += 1

    for i, c in enumerate(clients):
        for s in range(12):
            sim.spawn(session(c, PerRequestWorkload(seed=i * 12 + s)))
    sim.run_until(1.3)
    stats["running"] = False
    qps = stats["ops"] / 1.0
    mean = lambda xs: sum(xs) / max(1, len(xs))
    return qps, mean(stats["lat"]["strong"]) * 1e3, mean(stats["lat"]["eventual"]) * 1e3


def test_sec8d_extensibility(benchmark):
    def run():
        pure_sc = bespokv_run(Topology.MS, Consistency.STRONG, SHARDS, YCSB_B).qps
        pure_ec = bespokv_run(Topology.MS, Consistency.EVENTUAL, SHARDS, YCSB_B).qps
        pr_qps, sc_lat, ec_lat = run_per_request()
        polyglot = bespokv_run(
            Topology.MS, Consistency.EVENTUAL, SHARDS, YCSB_B,
            datalet_kinds=("ht", "log", "mt")).qps
        homogeneous_log = bespokv_run(
            Topology.MS, Consistency.EVENTUAL, SHARDS, YCSB_B,
            datalet_kinds=("log",)).qps
        return {
            "pure_sc": pure_sc, "pure_ec": pure_ec, "per_request": pr_qps,
            "strong_get_ms": sc_lat, "eventual_get_ms": ec_lat,
            "polyglot": polyglot, "homogeneous_log": homogeneous_log,
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table("§VIII-D: per-request consistency & polyglot persistence",
                ["config", "kQPS"],
                [["MS+SC (pure)", f"{r['pure_sc'] / 1e3:.1f}"],
                 ["per-request 25:75 SC:EC", f"{r['per_request'] / 1e3:.1f}"],
                 ["MS+EC (pure)", f"{r['pure_ec'] / 1e3:.1f}"],
                 ["polyglot tHT+tLog+tMT (MS+EC)", f"{r['polyglot'] / 1e3:.1f}"],
                 ["homogeneous tLog (MS+EC)", f"{r['homogeneous_log'] / 1e3:.1f}"]])
    print(f"GET latency: strong={r['strong_get_ms']:.2f}ms "
          f"eventual={r['eventual_get_ms']:.2f}ms")
    save_result("sec8d", r)

    # per-request throughput sits between the pure configurations
    assert r["pure_sc"] < r["per_request"] < r["pure_ec"] * 1.05, r
    # relaxed GETs are faster than strong GETs (paper: 0.67 vs 1.02 ms)
    assert r["eventual_get_ms"] < r["strong_get_ms"]
    # polyglot is usable: within the homogeneous envelope
    assert r["homogeneous_log"] * 0.8 < r["polyglot"] < r["pure_ec"] * 1.2