"""Shared helpers for the benchmark harness.

Every benchmark runs on the discrete-event simulator with a *bench*
cost model (``cpu_scale`` raised so saturation throughput is low enough
to simulate quickly — see DESIGN.md §2: absolute QPS is modeled, only
relative shapes are claimed).  All benchmarks print the rows/series the
corresponding paper table/figure reports, then assert the shape.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines import BaselineDeployment
from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.harness.loadgen import LoadGenerator, RunResult, preload
from repro.sim import CostModel, NetworkParams
from repro.workloads import OpMix, make_workload

__all__ = [
    "BENCH_SCALE",
    "bench_costs",
    "bench_control",
    "bespokv_deployment",
    "run_load",
    "bespokv_run",
    "baseline_run",
    "emit_summary",
    "print_series",
    "print_table",
    "KQPS",
]

#: cpu_scale for benchmark runs; tests use the (faster) default model.
BENCH_SCALE = 600.0

#: keys per benchmark keyspace (small enough to preload instantly,
#: large enough that zipf skew matters).
BENCH_KEYS = 2000


def bench_costs(scale: float = BENCH_SCALE) -> CostModel:
    return CostModel(cpu_scale=scale)


def bench_control() -> ControlConfig:
    return ControlConfig()


def KQPS(result: RunResult) -> float:
    return result.qps / 1e3


def bespokv_deployment(
    topology: Topology,
    consistency: Consistency,
    shards: int,
    replicas: int = 3,
    datalet_kinds: Sequence[str] = ("ht",),
    partitioner: str = "hash",
    costs: Optional[CostModel] = None,
    net_params: Optional[NetworkParams] = None,
    dpdk: bool = False,
    seed: int = 0,
) -> Deployment:
    dep = Deployment(
        DeploymentSpec(
            shards=shards,
            replicas=replicas,
            topology=topology,
            consistency=consistency,
            datalet_kinds=tuple(datalet_kinds),
            partitioner=partitioner,
            costs=costs or bench_costs(),
            net_params=net_params,
            dpdk=dpdk,
            control=bench_control(),
            standbys=1,
            seed=seed,
        )
    )
    dep.start()
    return dep


def _preload_items(keys: int = BENCH_KEYS, value_size: int = 32,
                   spread_alpha: bool = False) -> Dict[str, str]:
    wl = make_workload(OpMix(get=1.0), keys=keys, seed=1234, value_size=value_size,
                       spread_alpha=spread_alpha)
    return {wl.space.key(i): wl.value() for i in range(keys)}


def run_load(
    dep,
    mix: OpMix,
    distribution: str = "zipfian",
    duration: float = 1.0,
    warmup: float = 0.3,
    clients: Optional[int] = None,
    sessions_per_client: int = 12,
    keys: int = BENCH_KEYS,
    value_size: int = 32,
    scan_length: int = 50,
    timeline_interval: float = 0.0,
    extra_runtime: float = 0.0,
    client_factory=None,
    partitioner: str = "hash",
    preload_data: bool = True,
) -> RunResult:
    """Preload, drive closed-loop sessions, return measurements."""
    spread_alpha = partitioner == "range"
    if preload_data:
        items = _preload_items(keys, value_size, spread_alpha=spread_alpha)
        if client_factory is None:
            preload(dep, items, partitioner=partitioner)
        else:
            dep.preload(items)
    # enough closed-loop sessions to saturate the cluster at any size
    # (the paper sizes its client cluster "to saturate the cloud
    # network and server-side CPUs")
    if clients is None:
        if getattr(dep, "spec", None) is not None:
            clients = max(3, dep.spec.shards * dep.spec.replicas)
        else:
            clients = max(3, dep.shards * getattr(dep, "replicas", 1))

    def factory(i: int):
        return make_workload(
            mix, keys=keys, distribution=distribution, seed=1000 + i,
            value_size=value_size, scan_length=scan_length,
            spread_alpha=spread_alpha,
        )

    lg = LoadGenerator(
        dep,
        factory,
        clients=clients,
        warmup=warmup,
        duration=duration,
        timeline_interval=timeline_interval,
        sessions_per_client=sessions_per_client,
        client_factory=client_factory,
        client_kwargs=None if client_factory else {"partitioner": partitioner},
    )
    return lg.run(extra_runtime=extra_runtime)


def bespokv_run(
    topology: Topology,
    consistency: Consistency,
    shards: int,
    mix: OpMix,
    distribution: str = "zipfian",
    replicas: int = 3,
    datalet_kinds: Sequence[str] = ("ht",),
    partitioner: str = "hash",
    seed: int = 0,
    **load_kw,
) -> RunResult:
    dep = bespokv_deployment(
        topology, consistency, shards, replicas=replicas,
        datalet_kinds=datalet_kinds, partitioner=partitioner, seed=seed,
    )
    return run_load(dep, mix, distribution, partitioner=partitioner, **load_kw)


def baseline_run(
    kind: str,
    shards: int,
    mix: OpMix,
    distribution: str = "zipfian",
    replicas: int = 3,
    seed: int = 0,
    **load_kw,
) -> RunResult:
    dep = BaselineDeployment(
        kind, shards=shards, replicas=replicas, costs=bench_costs(), seed=seed
    )
    dep.start()
    return run_load(
        dep, mix, distribution,
        client_factory=lambda name: dep.client(name),
        **load_kw,
    )


# ---------------------------------------------------------------------------
# output formatting
# ---------------------------------------------------------------------------
def print_table(title: str, header: Iterable[str], rows: Iterable[Iterable]) -> None:
    header = list(header)
    rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(header)]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def print_series(title: str, x_label: str, xs: List, series: Dict[str, List[float]],
                 unit: str = "kQPS") -> None:
    header = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [f"{series[name][i]:.1f}" for name in series])
    print_table(f"{title} ({unit})", header, rows)


_SPARK = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[float], peak: Optional[float] = None) -> str:
    """Render a series as a unicode sparkline (each char one sample)."""
    peak = peak or max(values) or 1.0
    out = []
    for v in values:
        idx = min(len(_SPARK) - 1, int(round(v / peak * (len(_SPARK) - 1))))
        out.append(_SPARK[max(0, idx)])
    return "".join(out)


# ---------------------------------------------------------------------------
# consolidated summary (BENCH_PR5.json)
# ---------------------------------------------------------------------------
def _numeric_leaves(obj):
    """Every numeric leaf in a nested dict/list payload (bools excluded:
    feature matrices like table1 are flags, not measurements)."""
    if isinstance(obj, bool):
        return
    if isinstance(obj, (int, float)):
        yield float(obj)
    elif isinstance(obj, dict):
        for key in sorted(obj):
            yield from _numeric_leaves(obj[key])
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            yield from _numeric_leaves(item)


def emit_summary(results_dir: Optional[Path] = None,
                 out_path: Optional[Path] = None) -> Path:
    """Consolidate ``benchmarks/results/*.json`` into one summary file.

    Each benchmark appends its figure/table payload (QPS series,
    latency curves, feature flags) to ``benchmarks/results/`` via
    ``conftest.save_result``; this rolls all of them into a single
    ``BENCH_PR5.json`` at the repo root — per-figure series names plus
    numeric aggregates (count/min/max/mean of every measured value) —
    so one file answers "what did the benchmark suite measure".
    """
    results_dir = Path(results_dir or Path(__file__).parent / "results")
    out_path = Path(out_path or Path(__file__).parent.parent / "BENCH_PR5.json")
    figures: Dict[str, Dict] = {}
    for path in sorted(results_dir.glob("*.json")):
        payload = json.loads(path.read_text())
        leaves = list(_numeric_leaves(payload))
        entry: Dict[str, object] = {
            "series": sorted(payload) if isinstance(payload, dict) else [],
            "values": len(leaves),
        }
        if leaves:
            entry.update(
                min=min(leaves),
                max=max(leaves),
                mean=round(sum(leaves) / len(leaves), 6),
            )
        figures[path.stem] = entry
    summary = {
        "format": "repro.bench.summary/1",
        "figures": figures,
        "figure_count": len(figures),
    }
    out_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return out_path


def print_timelines(title: str, timelines: Dict[str, List], mark: Optional[float] = None) -> None:
    """ASCII rendition of the paper's timeline figures: one sparkline
    per series, all scaled to the global peak; ``mark`` prints a column
    marker (the kill/transition trigger time)."""
    print(f"\n=== {title} ===")
    peak = max((q for series in timelines.values() for _t, q in series), default=1.0)
    width = max(len(name) for name in timelines)
    first = next(iter(timelines.values()))
    if mark is not None and first:
        step = first[1][0] - first[0][0] if len(first) > 1 else 1.0
        pos = int(mark / step) if step else 0
        print(" " * (width + 2) + " " * pos + "v trigger")
    for name, series in timelines.items():
        print(f"{name.ljust(width)}  {sparkline([q for _t, q in series], peak)}")
    print(f"(peak = {peak / 1e3:.1f} kQPS; one column per interval)")


if __name__ == "__main__":  # regenerate the consolidated summary
    print(f"summary -> {emit_summary()}")
