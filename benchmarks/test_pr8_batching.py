"""PR 8 headline: hot-path batching throughput (BENCH_PR8.json).

Three measurements, one per batching layer:

1. **Sequencer group commit** — AA+EC on a write-only, sequencer-bound
   workload, batched (default knobs) vs coalescing disabled (every
   batch cap forced to 1, which reproduces the pre-batching per-op
   protocol).  This is the acceptance figure: >=1.5x.
2. **Chain frame coalescing** — the same A/B on MS+SC, where the win
   comes from fewer chain hops per op (one ``chain_put_batch`` frame
   carries many entries down each link).
3. **Client pipelining** — wall-clock (simulated) drain time of a
   fixed op count through ``PipelinedClient`` vs the same ops awaited
   one at a time.

The module ends by consolidating ``benchmarks/results/*.json`` into
``BENCH_PR8.json`` at the repo root, the summary CI diffs against
``BENCH_PR5.json`` (see ``benchmarks/bench_guard.py``).
"""

from pathlib import Path

from conftest import save_result

from bench_lib import (
    bench_control,
    bench_costs,
    emit_summary,
    print_table,
    run_load,
)
from repro.client import PipelinedClient
from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.workloads import OpMix

WRITE_ONLY = OpMix(put=1.0)

#: every hot-path batch capped at one entry: the pre-batching protocol.
UNBATCHED = ControlConfig(group_commit_max=1, chain_batch_max=1,
                          replicate_batch_max=1, ec_batch_max=1)


def _run(topology, consistency, control, shards=4):
    dep = Deployment(
        DeploymentSpec(
            shards=shards, replicas=3, topology=topology,
            consistency=consistency, costs=bench_costs(), control=control,
        )
    )
    dep.start()
    return run_load(dep, WRITE_ONLY, duration=1.0)


def _pipeline_drain_qps(window: int, ops: int = 400) -> float:
    """Simulated seconds to push ``ops`` puts through one client at the
    given pipeline window, as throughput."""
    dep = Deployment(
        DeploymentSpec(shards=1, replicas=3, topology=Topology.AA,
                       consistency=Consistency.EVENTUAL,
                       costs=bench_costs(), control=bench_control())
    )
    dep.start()
    client = dep.client("c0")
    dep.sim.run_future(client.connect())
    pipe = PipelinedClient(client, window=window, window_max=max(window, 1),
                           window_min=1, adaptive=False)
    start = dep.sim.now
    for i in range(ops):
        pipe.put(f"k{i % 50}", "v" * 32)
    dep.sim.run_future(pipe.drain(), timeout=600.0)
    elapsed = dep.sim.now - start
    pipe.stop()
    return ops / elapsed if elapsed > 0 else 0.0


def test_pr8_group_commit_and_chain_frames(benchmark):
    """The acceptance figure: batched vs unbatched on the write path."""

    def run():
        out = {}
        for name, topo, cons in (
            ("aa_ec", Topology.AA, Consistency.EVENTUAL),
            ("ms_sc", Topology.MS, Consistency.STRONG),
        ):
            out[f"{name}_batched_qps"] = _run(topo, cons, bench_control()).qps
            out[f"{name}_unbatched_qps"] = _run(topo, cons, UNBATCHED).qps
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in ("aa_ec", "ms_sc"):
        b, u = out[f"{name}_batched_qps"], out[f"{name}_unbatched_qps"]
        out[f"{name}_speedup"] = b / u
        rows.append([name, f"{u / 1e3:.2f}", f"{b / 1e3:.2f}", f"{b / u:.2f}x"])
    print_table("PR8: hot-path batching (write-only mix)",
                ["combo", "unbatched kQPS", "batched kQPS", "speedup"], rows)
    save_result("pr8_batching", out)
    # the sequencer-bound combo is the headline: group commit amortizes
    # the ordering round-trip and the sequencer's per-message CPU
    assert out["aa_ec_speedup"] >= 1.5, out
    # chain frames must win too, if more modestly (per-hop amortization)
    assert out["ms_sc_speedup"] >= 1.2, out


def test_pr8_client_pipelining(benchmark):
    """Windowed submission overlaps request round-trips end to end."""

    def run():
        return {f"window{w}_qps": _pipeline_drain_qps(w) for w in (1, 4, 16)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("PR8: client pipelining (single session, 400 puts)",
                ["window", "QPS"],
                [[w, f"{out[f'window{w}_qps']:.0f}"] for w in (1, 4, 16)])
    save_result("pr8_pipelining", out)
    assert out["window4_qps"] > out["window1_qps"] * 2.0
    assert out["window16_qps"] >= out["window4_qps"] * 0.9


def test_pr8_emit_summary():
    """Consolidate results into BENCH_PR8.json (repo root)."""
    out = emit_summary(
        out_path=Path(__file__).parent.parent / "BENCH_PR8.json")
    print(f"\nsummary -> {out}")
    assert out.exists()
