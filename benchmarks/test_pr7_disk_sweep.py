"""PR 7 — the disk-cost plane: snapshot cadence x fsync cadence.

PR 6 measured the durability tax along one axis (``wal_sync_every``).
This sweep fills in the second axis the WAL exposes —
``wal_snapshot_every``, the compaction cadence — because the two knobs
buy different things with the same disk:

* **fsync cadence** (``sync_every``) buys *durability of the ack*:
  every sync is latency on the write path, so put throughput is
  monotone in the cadence;
* **snapshot cadence** (``snapshot_every``) buys *recovery speed*:
  each compaction rewrites the full dataset (write amplification), but
  bounds the log tail a crash-restart must replay — recovery replays at
  most ``snapshot_every + sync_every`` records no matter how long the
  run was.

Each cell drives a fixed number of serial puts through a durable MS+SC
shard (fixed op count, so WAL counters are comparable across cells),
reads the per-datalet WAL counters, then power-cycles one replica
through the real ``Deployment.recover_host`` and reports the replay
length.  Results land in ``benchmarks/results/pr7_disk_sweep.json``
and the consolidated ``BENCH_PR7.json`` at the repo root
(``BENCH_PR6.json`` stays in place as the comparison baseline).
"""

import json
import pathlib

from conftest import save_result

from bench_lib import bench_control, bench_costs, emit_summary, print_table
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec

ROOT = pathlib.Path(__file__).parent.parent

PUTS = 400
RECOVER_AFTER = 0.5  # inside the detection window: WAL rejoin, not failover
SYNC_EVERY = [1, 8, 64]
SNAPSHOT_EVERY = [32, 256]


def sweep_cell(sync_every: int, snapshot_every: int, seed: int = 11) -> dict:
    spec = DeploymentSpec(
        shards=1, replicas=3,
        topology=Topology.MS, consistency=Consistency.STRONG,
        costs=bench_costs(), control=bench_control(),
        standbys=1, seed=seed,
        durable=True, wal_sync_every=sync_every,
        wal_snapshot_every=snapshot_every,
    )
    dep = Deployment(spec)
    dep.start()
    client = dep.client("bench")
    dep.sim.run_future(client.connect())

    t0 = dep.sim.now
    for i in range(PUTS):
        dep.sim.run_future(client.put(f"key{i:04d}", f"val{i}"))
    elapsed = dep.sim.now - t0

    wals = [
        dep.cluster.actors[r.datalet].wal
        for r in dep.map.shard("s0").ordered()
    ]
    appends = sum(w.appends for w in wals)
    syncs = sum(w.syncs for w in wals)
    snapshots = sum(w.snapshots for w in wals)

    # power-cycle one replica: crash, then WAL rejoin inside the window
    victim = dep.replica_host(0, 1)
    dep.cluster.kill_host(victim)
    record = None

    def recover():
        nonlocal record
        record = dep.recover_host(victim)

    dep.sim.call_later(RECOVER_AFTER, recover)
    dep.sim.run_until(dep.sim.now + 2.0)
    assert record is not None

    return {
        "put_qps": round(PUTS / elapsed, 1),
        "appends": appends,
        "syncs": syncs,
        "snapshots": snapshots,
        "replay_records": record.records_applied,
        "snapshot_seq": record.snapshot_seq,
        "torn_tail_dropped": record.torn_tail_dropped,
        "replayed_seq": record.replayed_seq,
        "durable_seq_at_crash": record.durable_seq_at_crash,
    }


def test_pr7_disk_sweep(benchmark):
    def run():
        return {
            (se, sn): sweep_cell(se, sn)
            for se in SYNC_EVERY
            for sn in SNAPSHOT_EVERY
        }

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "PR7: disk-cost plane, 3-replica MS+SC chain, "
        f"{PUTS} serial puts (bench cost scale)",
        ["sync_every", "snapshot_every", "put QPS", "syncs",
         "snapshots", "replay records"],
        [
            [se, sn, f"{c['put_qps']:.0f}", c["syncs"],
             c["snapshots"], c["replay_records"]]
            for (se, sn), c in sorted(cells.items())
        ],
    )

    for sn in SNAPSHOT_EVERY:
        col = [cells[(se, sn)] for se in SYNC_EVERY]
        # fsync cadence: throughput monotone, sync count inversely so
        assert col[0]["put_qps"] < col[1]["put_qps"] < col[2]["put_qps"], col
        assert col[0]["syncs"] > col[1]["syncs"] > col[2]["syncs"], col

    for se in SYNC_EVERY:
        fast, slow = cells[(se, 32)], cells[(se, 256)]
        # snapshot cadence: more compactions (write amplification) ...
        assert fast["snapshots"] > slow["snapshots"], (fast, slow)
        # ... buying a strictly bounded recovery tail in *every* cell
        for sn, c in ((32, fast), (256, slow)):
            assert c["replay_records"] <= sn + se, (sn, se, c)
            assert c["replayed_seq"] >= c["durable_seq_at_crash"], c

    # every replica logged every put exactly once (3-deep chain)
    assert all(c["appends"] == 3 * PUTS for c in cells.values())

    save_result("pr7_disk_sweep", {
        "puts": PUTS,
        "cells": {
            f"sync={se},snap={sn}": {
                k: c[k] for k in
                ("put_qps", "syncs", "snapshots", "replay_records")
            }
            for (se, sn), c in sorted(cells.items())
        },
    })
    out = emit_summary(out_path=ROOT / "BENCH_PR7.json")
    print(f"\nconsolidated summary -> {out}")

    # the consolidated summary strictly extends the PR 6 baseline
    pr6 = ROOT / "BENCH_PR6.json"
    if pr6.exists():
        baseline = json.loads(pr6.read_text())
        grown = json.loads(out.read_text())
        assert grown["figure_count"] >= baseline["figure_count"]
        assert "pr7_disk_sweep" in grown["figures"]
