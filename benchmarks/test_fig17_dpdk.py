"""Fig 17 (Appendix E) — DPDK vs kernel sockets on a single shard.

Paper shapes: "DPDK reduces latency by up to 65%.  We also observe 3x
improvement in throughput ... DPDK based communication results in more
stable performance."
"""

import statistics

from conftest import save_result

from bench_lib import bench_costs, print_table, print_timelines, run_load
from repro.core.config import ControlConfig
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.net.dpdk import SOCKET_NET_PARAMS, dpdk_net_params
from repro.workloads import YCSB_B


def run_variant(dpdk: bool):
    dep = Deployment(
        DeploymentSpec(
            shards=1,
            replicas=3,
            topology=Topology.MS,
            consistency=Consistency.EVENTUAL,
            costs=bench_costs(),
            net_params=dpdk_net_params() if dpdk else SOCKET_NET_PARAMS,
            dpdk=dpdk,
            # per-op protocol: this figure isolates the per-message
            # network-stack cost, which hot-path coalescing would dilute
            # (fewer, larger frames shrink the stack's share of each op)
            control=ControlConfig(group_commit_max=1, chain_batch_max=1,
                                  replicate_batch_max=1, ec_batch_max=1),
        )
    )
    dep.start()
    return run_load(
        dep, YCSB_B, distribution="uniform",
        duration=4.0, warmup=1.0, clients=6, sessions_per_client=8,
        timeline_interval=0.5,
    )


def test_fig17_dpdk(benchmark):
    def run():
        return {"Socket": run_variant(False), "DPDK": run_variant(True)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    stability = {}
    for name, res in results.items():
        steady = [q for t, q in res.timeline if t >= 1.0]
        cv = statistics.pstdev(steady) / statistics.mean(steady)
        stability[name] = cv
        rows.append([name, f"{res.qps:,.0f}", f"{res.mean_latency_ms:.2f}",
                     f"{res.p99_ms:.2f}", f"{cv:.3f}"])
    print_table("Fig 17: socket vs DPDK (single shard)",
                ["transport", "QPS", "mean ms", "p99 ms", "throughput CV"], rows)
    print_timelines("Fig 17: throughput timeline",
                    {name: res.timeline for name, res in results.items()})
    save_result("fig17", {
        name: {"qps": res.qps, "mean_ms": res.mean_latency_ms,
               "p99_ms": res.p99_ms, "cv": stability[name]}
        for name, res in results.items()
    })

    socket, dpdk = results["Socket"], results["DPDK"]
    # latency cut: paper reports up to 65%; require >= 40%
    cut = 1 - dpdk.mean_latency_ms / socket.mean_latency_ms
    assert cut > 0.40, f"DPDK latency cut only {cut:.0%}"
    # throughput: paper reports ~3x; require >= 2x
    gain = dpdk.qps / socket.qps
    assert gain > 2.0, f"DPDK throughput gain only {gain:.1f}x"
    # more stable performance: lower coefficient of variation
    assert stability["DPDK"] <= stability["Socket"] * 1.1
