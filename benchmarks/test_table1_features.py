"""Table I — feature matrix: BESPOKV vs single-server / Twemproxy /
Mcrouter / Dynomite.

The paper's table is qualitative; here every claimed capability of
*this implementation* is probed by actually exercising it, and the
comparators' gaps are demonstrated against the baseline models
(Twemproxy: no replication; none of them: multiple consistency models,
topology switching, programmability).
"""

from conftest import save_result

from bench_lib import print_table
from repro.baselines import BaselineDeployment
from repro.core.types import Consistency, Topology
from repro.harness import CONTROLET_CLASSES, Deployment, DeploymentSpec


def probe_bespokv() -> dict:
    """Exercise each Table-I capability on a live deployment."""
    caps = {}
    dep = Deployment(
        DeploymentSpec(shards=2, replicas=3, topology=Topology.MS,
                       consistency=Consistency.EVENTUAL,
                       datalet_kinds=("ht", "lsm", "mt"))
    )
    dep.start()
    client = dep.client("probe")
    dep.sim.run_future(client.connect())
    # S: sharding — two shards, keys split between them
    owners = {client.shard_for(f"k{i}").shard_id for i in range(64)}
    caps["S"] = len(owners) == 2
    # R: replication — a write reaches all three replica datalets
    dep.sim.run_future(client.put("repl", "x"))
    dep.sim.run_until(dep.sim.now + 1.0)
    shard = client.shard_for("repl")
    caps["R"] = all(
        dep.cluster.actor(r.datalet).engine.contains("repl") for r in shard.ordered()
    )
    # MB: multiple backends — three engine kinds in one deployment
    caps["MB"] = {r.datalet_kind for r in shard.ordered()} == {"ht", "lsm", "mt"}
    # MC: multiple consistency models — all four combos have controlets,
    # plus per-request consistency on the client API
    caps["MC"] = len(CONTROLET_CLASSES) == 4
    # MT: multiple topologies — MS and AA controlets exist and a live
    # topology switch is supported (Fig 10 benchmark exercises it)
    caps["MT"] = {t for (t, _c) in CONTROLET_CLASSES} == {Topology.MS, Topology.AA}
    # AR: automatic failover recovery — exercised in Fig 16 bench; here
    # assert the machinery exists end-to-end
    dep.kill_replica(0, 2)
    dep.sim.run_until(dep.sim.now + 12.0)
    caps["AR"] = len(dep.shard(0).replicas) == 3 and dep.coordinator.failovers == 1
    # P: programmable — new controlets are subclasses (hybrid §IV-E)
    from repro.core.hybrid import AAMSHybridControlet, P2PNode  # noqa: F401

    caps["P"] = True
    return caps


def probe_baselines() -> dict:
    out = {}
    for kind in ("twemproxy", "mcrouter", "dynomite"):
        dep = BaselineDeployment(kind, shards=4, replicas=3)
        dep.start()
        client = dep.client("probe")
        dep.sim.run_future(client.connect())
        dep.sim.run_future(client.put("k", "v"))
        dep.sim.run_until(dep.sim.now + 1.0)
        holders = sum(1 for _n, e in dep.node_engines() if e.contains("k"))
        out[kind] = {
            "S": True,
            "R": holders > 1,
            # Table I: Twemproxy & Dynomite route to memcached and
            # redis backends; Mcrouter is memcached-only
            "MB": kind != "mcrouter",
            "MC": False,
            "MT": False,
            "AR": False,  # Table I: none auto-recovers failed nodes
            "P": False,
        }
    return out


def test_table1_feature_matrix(benchmark):
    def run():
        bespokv = probe_bespokv()
        baselines = probe_baselines()
        return bespokv, baselines

    bespokv, baselines = benchmark.pedantic(run, rounds=1, iterations=1)

    cols = ("S", "R", "MB", "MC", "MT", "AR", "P")
    rows = [["Single-server", "no", "no", "no", "no", "no", "no", "no"]]
    for label, kind in (("Twemproxy", "twemproxy"), ("Mcrouter", "mcrouter"),
                        ("Dynomite", "dynomite")):
        rows.append([label] + ["yes" if baselines[kind][c] else "no" for c in cols])
    rows.append(["BESPOKV (this repo)"] + ["yes" if bespokv[c] else "no" for c in cols])
    print_table("Table I: feature comparison",
                ["System", "S", "R", "MB", "MC", "MT", "AR", "P"], rows)
    save_result("table1", {"bespokv": bespokv, "baselines": baselines})

    # the paper's claim: BESPOKV checks every column
    assert all(bespokv.values()), f"missing capability: {bespokv}"
    # and the comparators' gaps match their Table I rows
    assert not baselines["twemproxy"]["R"]
    assert baselines["mcrouter"]["R"] and not baselines["mcrouter"]["MB"]
    assert baselines["dynomite"]["R"]
