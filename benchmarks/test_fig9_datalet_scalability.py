"""Fig 9 — BESPOKV scales tSSDB, tLog and tMT with MS+EC, 3→48 nodes,
including the scan-intensive YCSB-E mix for ordered engines.

Paper shapes (§VIII-B): all three scale near-linearly; "tMT is an
in-memory database and thus outperforms both tLog and tSSDB which
persist data on disk"; "the throughput of Scans (range queries) is
much lower than point queries".
"""

from conftest import save_result

from bench_lib import bespokv_run, print_series
from repro.core.types import Consistency, Topology
from repro.workloads import YCSB_A, YCSB_B, YCSB_E

SHARD_SIZES = [1, 2, 4, 8, 16]
NODES = [s * 3 for s in SHARD_SIZES]

DATALETS = {"tSSDB": "ssdb", "tLog": "log", "tMT": "mt"}
SCAN_CAPABLE = {"tSSDB", "tMT"}


def run_config(kind: str, mix, dist: str):
    # Range partitioning so scans touch only covering shards, as the
    # paper's range-query service prescribes (§IV-B).
    return [
        bespokv_run(
            Topology.MS, Consistency.EVENTUAL, s, mix,
            distribution=dist, datalet_kinds=(kind,), partitioner="range",
            scan_length=50,
        ).qps
        for s in SHARD_SIZES
    ]


def test_fig9_datalet_scalability(benchmark):
    def run():
        results = {}
        for label, kind in DATALETS.items():
            series = {
                "Unif 95% GET": run_config(kind, YCSB_B, "uniform"),
                "Zipf 95% GET": run_config(kind, YCSB_B, "zipfian"),
                "Unif 50% GET": run_config(kind, YCSB_A, "uniform"),
                "Zipf 50% GET": run_config(kind, YCSB_A, "zipfian"),
            }
            if label in SCAN_CAPABLE:
                series["Unif 95% SCAN"] = run_config(kind, YCSB_E, "uniform")
                series["Zipf 95% SCAN"] = run_config(kind, YCSB_E, "zipfian")
            results[label] = series
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for label, series in results.items():
        print_series(
            f"Fig 9: {label} scalability (MS+EC)",
            "nodes",
            NODES,
            {k: [v / 1e3 for v in vs] for k, vs in series.items()},
        )
    save_result("fig9", results)

    # 1) every datalet scales: 16 shards >= 4x one shard on point ops
    for label, series in results.items():
        for wl in ("Unif 95% GET", "Unif 50% GET"):
            growth = series[wl][-1] / series[wl][0]
            assert growth > 4, f"{label} {wl} growth {growth:.1f}x"
    # 2) the in-memory tMT outperforms both persistent datalets
    for wl in ("Unif 95% GET", "Zipf 95% GET", "Unif 50% GET", "Zipf 50% GET"):
        assert results["tMT"][wl][-1] > results["tLog"][wl][-1], wl
        assert results["tMT"][wl][-1] > results["tSSDB"][wl][-1], wl
    # 3) scans are far slower than point queries
    for label in SCAN_CAPABLE:
        assert results[label]["Unif 95% SCAN"][-1] < results[label]["Unif 95% GET"][-1] / 3
