"""Ablation — hot-key shadow replication (App C-C).

"Load imbalance due to hot keys can be solved by ... replicating this
key on a shadow server that is rehashed by adding a suffix to the key."

An extremely skewed read workload (one key takes ~50% of reads) pins
one shard; the hot-key client spreads those reads over shadow copies on
other shards.  Measured: throughput with vs without the shadow cache.
"""

import random

from conftest import save_result

from bench_lib import bench_costs, print_table
from repro.client import HotKeyReplicatingClient
from repro.core.types import Consistency, Topology
from repro.harness import Deployment, DeploymentSpec
from repro.harness.loadgen import LoadGenerator, preload
from repro.workloads import KeySpace, UniformKeys, Workload, YCSB_B


class HotSpotWorkload:
    """95% GET / 5% PUT with ~half of all reads hitting one key."""

    def __init__(self, seed):
        self.inner = Workload(YCSB_B, UniformKeys(KeySpace(2000), random.Random(seed)),
                              rng=random.Random(seed))
        self.rng = random.Random(seed * 31 + 7)
        self.counts = self.inner.counts

    def next_op(self):
        op = self.inner.next_op()
        if op[0] == "get" and self.rng.random() < 0.5:
            return ("get", "user00000000")  # the hotspot
        return op


def run(shadow: bool) -> float:
    dep = Deployment(
        DeploymentSpec(shards=8, replicas=3, topology=Topology.MS,
                       consistency=Consistency.EVENTUAL, costs=bench_costs())
    )
    dep.start()
    space = KeySpace(2000)
    preload(dep, {space.key(i): "v" * 32 for i in range(2000)})

    def factory(name):
        inner = dep.client(name)
        if shadow:
            # threshold is reads-per-client before promotion: each of the
            # 24 client wrappers sees ~30 ops in the window at modeled
            # cost scale, so 16 promotes the hotspot early enough for the
            # shadows to matter inside the measurement
            return HotKeyReplicatingClient(inner, threshold=16, n_shadows=3)
        return inner

    lg = LoadGenerator(
        dep, lambda i: HotSpotWorkload(seed=1000 + i),
        clients=24, sessions_per_client=12, warmup=0.5, duration=1.5,
        client_factory=factory,
    )
    return lg.run().qps


def test_ablation_hotkey_shadow_replication(benchmark):
    def run_both():
        return {"baseline": run(shadow=False), "shadow": run(shadow=True)}

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    gain = out["shadow"] / out["baseline"]
    print_table("Ablation: hot-key shadow replication (1 key = 50% of reads)",
                ["client", "kQPS"],
                [["plain", f"{out['baseline'] / 1e3:.2f}"],
                 ["hot-key shadows", f"{out['shadow'] / 1e3:.2f}"],
                 ["gain", f"{gain:.2f}x"]])
    save_result("ablation_hotkey", {**out, "gain": gain})
    assert gain > 1.2, f"shadow replication gained only {gain:.2f}x"
